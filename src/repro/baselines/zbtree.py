"""Z-order (Morton) linearisation over a B+-tree ([Ore86]).

The workaround the paper discusses in §1: map each point's interleaved bit
path to a scalar and index it with an ordinary B-tree, inheriting the
B-tree's worst-case guarantees for exact-match and updates.  The two
documented drawbacks are reproduced here:

- **No contraction to occupied subspaces**: a range query must be
  decomposed into Z-intervals over the *whole* data space; empty regions
  still fragment the interval set, so range queries touch more pages than
  a region-contracting index ([KSS+90]).
- **No direct representation of extended objects** (not applicable to
  point workloads, discussed in the paper's introduction).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import GeometryError
from repro.core.query import QueryResult
from repro.baselines.btree import BPlusTree
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore


class ZOrderBTree:
    """Points indexed by their Morton code in a B+-tree."""

    def __init__(
        self,
        space: DataSpace,
        leaf_capacity: int = 16,
        fanout: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
        max_intervals: int = 64,
    ):
        self.space = space
        self.tree = BPlusTree(
            leaf_capacity=leaf_capacity,
            fanout=fanout,
            page_bytes=page_bytes,
            store=store,
        )
        self.max_intervals = max_intervals

    @property
    def store(self) -> PageStore:
        """The underlying page store (for I/O accounting)."""
        return self.tree.store

    @property
    def count(self) -> int:
        """Number of records."""
        return self.tree.count

    @property
    def height(self) -> int:
        """Branch levels above the leaves."""
        return self.tree.height

    # ------------------------------------------------------------------
    # Point operations — straight B-tree operations on the Morton code
    # ------------------------------------------------------------------

    def insert(
        self, point: Sequence[float], value: Any = None, replace: bool = False
    ) -> None:
        """Insert a record keyed by the point's Morton code."""
        pt = tuple(float(x) for x in point)
        self.tree.insert(self.space.point_path(pt), (pt, value), replace=replace)

    def get(self, point: Sequence[float]) -> Any:
        """The value stored at ``point``."""
        return self.tree.get(self.space.point_path(point))[1]

    def contains(self, point: Sequence[float]) -> bool:
        """True if a record exists at ``point``."""
        return self.tree.contains(self.space.point_path(point))

    def delete(self, point: Sequence[float]) -> Any:
        """Remove and return the record at ``point``."""
        return self.tree.delete(self.space.point_path(point))[1]

    def search_cost(self, point: Sequence[float]) -> int:
        """Pages visited by an exact-match search."""
        return self.tree.search_cost(self.space.point_path(point))

    # ------------------------------------------------------------------
    # Range queries via Z-interval decomposition
    # ------------------------------------------------------------------

    def z_intervals(self, rect: Rect) -> list[tuple[int, int]]:
        """Decompose a box into Morton-code intervals.

        Recursively refines the binary partition: blocks fully inside the
        box become whole intervals, partially overlapping blocks are
        subdivided until the interval budget ``max_intervals`` is reached,
        after which partial blocks are conservatively included (records
        are filtered afterwards, so results stay exact — the budget only
        trades interval count against interval tightness, as real Z-order
        implementations do).
        """
        if rect.ndim != self.space.ndim:
            raise GeometryError(
                f"query box is {rect.ndim}-d, space is {self.space.ndim}-d"
            )
        intervals: list[tuple[int, int]] = []
        frontier: list[RegionKey] = [ROOT_KEY]
        while frontier:
            refined: list[RegionKey] = []
            for key in frontier:
                block = self.space.key_rect(key)
                if not block.intersects(rect):
                    continue
                if rect.contains_rect(block) or key.nbits >= self.space.path_bits:
                    intervals.append(self._key_interval(key))
                elif (
                    len(intervals) + len(refined) + len(frontier)
                    >= self.max_intervals
                ):
                    intervals.append(self._key_interval(key))
                else:
                    refined.append(key.child(0))
                    refined.append(key.child(1))
            frontier = refined
        intervals.sort()
        merged: list[tuple[int, int]] = []
        for low, high in intervals:
            if merged and low <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], high))
            else:
                merged.append((low, high))
        return merged

    def _key_interval(self, key: RegionKey) -> tuple[int, int]:
        shift = self.space.path_bits - key.nbits
        low = key.value << shift
        return low, low + (1 << shift) - 1

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> QueryResult:
        """All records in the half-open box, via Z-interval scans."""
        rect = Rect(lows, highs)
        result = QueryResult()
        for low, high in self.z_intervals(rect):
            records, pages = self.tree.range_scan(low, high + 1)
            result.pages_visited += pages
            result.data_pages_visited += pages
            for _, (point, value) in records:
                if rect.contains_point(point):
                    result.records.append((point, value))
        return result

    def partial_match(self, constraints: dict[int, float]) -> QueryResult:
        """Exact values on a subset of dimensions (grid-cell granularity)."""
        space = self.space
        cells = 1 << space.resolution
        lows, highs = [], []
        for dim, (lo, hi) in enumerate(space.bounds):
            if dim in constraints:
                value = constraints[dim]
                if not lo <= value <= hi:
                    raise GeometryError(
                        f"constraint {value} outside [{lo}, {hi}]"
                    )
                span = hi - lo
                g = min(int((value - lo) / span * cells), cells - 1)
                lows.append(lo + g / cells * span)
                highs.append(lo + (g + 1) / cells * span)
            else:
                lows.append(lo)
                highs.append(hi)
        return self.range_query(lows, highs)

    def __len__(self) -> int:
        return self.tree.count

    def __repr__(self) -> str:
        return f"ZOrderBTree({self.tree.count} records, height={self.tree.height})"
