"""The BANG file with a balanced directory ([Fre87], paper Figure 1-3).

The BANG file partitions both data and directory pages by balanced binary
partitions and represents enclosure (holey regions) — everything the
BV-tree does, *except* promotion.  The paper's Figure 1-3 shows the
consequence: the best-balance boundary of a directory split may cut a
lower-level region, and without guards the only option is to **force a
split** of that region on the same boundary, cascading one forced split
per level all the way to a data page.

``stats.forced_splits`` counts those cascades.  The forced splits also
have no freedom of position, so — exactly as the paper argues — minimum
occupancy cannot be maintained; the occupancy statistics expose that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    TreeInvariantError,
)
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.query import QueryResult
from repro.core.split import choose_split
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore


@dataclass
class BangStats:
    """Structural event counters for the BANG file."""

    data_splits: int = 0
    index_splits: int = 0
    forced_splits: int = 0
    max_cascade: int = 0


class BangFile:
    """A BANG file whose directory is kept balanced by forced splits.

    Shares the BV-tree's node and geometry machinery; the only difference
    is what happens when a directory split boundary cuts a region: here it
    is split on the spot (no promotion), recursively.
    """

    def __init__(
        self,
        space: DataSpace,
        data_capacity: int = 16,
        fanout: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
    ):
        if data_capacity < 2:
            raise TreeInvariantError(
                f"data pages must hold at least 2 points, got {data_capacity}"
            )
        if fanout < 4:
            raise TreeInvariantError(f"fan-out must be at least 4, got {fanout}")
        self.space = space
        self.data_capacity = data_capacity
        self.fanout = fanout
        self.store = store if store is not None else PageStore(page_bytes)
        self.stats = BangStats()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(DataPage(), size_class=0)
        self._cascade = 0

    # ------------------------------------------------------------------
    # Descent — longest prefix, no guards (every entry is in its node)
    # ------------------------------------------------------------------

    def _descend(self, path_bits: int, path: int) -> list[tuple[int, Entry | None]]:
        """Pages from root to data page, with the entry chosen at each."""
        chain: list[tuple[int, Entry | None]] = [(self.root_page, None)]
        node = self.store.read(self.root_page)
        while isinstance(node, IndexNode):
            best = node.best_native_match(path, path_bits)
            if best is None:
                raise TreeInvariantError("no region covers the search path")
            chain.append((best.page, best))
            node = self.store.read(best.page)
        return chain

    def insert(
        self, point: Sequence[float], value: Any = None, replace: bool = False
    ) -> None:
        """Insert one record, splitting pages upward as needed."""
        pt = tuple(float(x) for x in point)
        path = self.space.point_path(pt)
        chain = self._descend(self.space.path_bits, path)
        page_id, _ = chain[-1]
        page: DataPage = self.store.read(page_id)
        had = path in page.records
        if had and not replace:
            raise DuplicateKeyError(f"point {pt} already present")
        page.insert(path, pt, value, replace=replace)
        self.store.write(page_id, page)
        if not had:
            self.count += 1
        if len(page.records) > self.data_capacity:
            self._cascade = 0
            self._split_data(chain)

    def get(self, point: Sequence[float]) -> Any:
        """The value stored at ``point``."""
        path = self.space.point_path(point)
        chain = self._descend(self.space.path_bits, path)
        page: DataPage = self.store.read(chain[-1][0])
        record = page.get(path)
        if record is None:
            raise KeyNotFoundError(f"no record at {tuple(point)}")
        return record[1]

    def search_cost(self, point: Sequence[float]) -> int:
        """Pages visited by an exact-match search."""
        return len(self._descend(self.space.path_bits, self.space.point_path(point)))

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------

    def _entry_key(self, chain_entry: Entry | None) -> RegionKey:
        return ROOT_KEY if chain_entry is None else chain_entry.key

    def _split_data(self, chain: list[tuple[int, Entry | None]]) -> None:
        page_id, entry = chain[-1]
        page: DataPage = self.store.read(page_id)
        base = self._entry_key(entry)
        items = [(p, self.space.path_bits) for p in page.paths()]
        split_key = choose_split(base, items)
        inner = DataPage()
        for p in list(page.paths()):
            if split_key.contains_path(p, self.space.path_bits):
                inner.records[p] = page.records.pop(p)
        inner_page = self.store.allocate(inner, size_class=0)
        self.store.write(page_id, page)
        self.stats.data_splits += 1
        self._add_to_parent(chain[:-1], Entry(split_key, 0, inner_page))

    def _add_to_parent(
        self, chain: list[tuple[int, Entry | None]], new_entry: Entry
    ) -> None:
        if not chain:
            # The split page was the root: grow the tree.
            old_root_level = new_entry.level
            root = IndexNode(
                old_root_level + 1,
                [Entry(ROOT_KEY, old_root_level, self.root_page), new_entry],
            )
            self.root_page = self.store.allocate(root, size_class=1)
            self.height += 1
            return
        node_page, node_entry = chain[-1]
        node: IndexNode = self.store.read(node_page)
        node.add(new_entry)
        self.store.write(node_page, node)
        if len(node.entries) > self.fanout:
            self._split_index(chain)

    @staticmethod
    def _straddles(
        entries: list[Entry], entry: Entry, boundary: RegionKey
    ) -> bool:
        """Does ``entry``'s holey region actually cross ``boundary``?

        Only the *directly* enclosing region does: if another same-level
        entry sits between (its block covering all of the boundary's
        block), the outer region's holey extent has nothing inside the
        boundary and it belongs entirely to the outer side.
        """
        return not any(
            other is not entry
            and other.level == entry.level
            and entry.key.encloses(other.key)
            and other.key.is_prefix_of(boundary)
            for other in entries
        )

    def _split_index(self, chain: list[tuple[int, Entry | None]]) -> None:
        node_page, entry = chain[-1]
        node: IndexNode = self.store.read(node_page)
        base = self._entry_key(entry)
        items = [(e.key.value, e.key.nbits) for e in node.entries]
        split_key = choose_split(base, items)
        self.stats.index_splits += 1

        inner_entries: list[Entry] = []
        outer_entries: list[Entry] = []
        for e in list(node.entries):
            if split_key.is_prefix_of(e.key):
                inner_entries.append(e)
            elif e.key.encloses(split_key) and self._straddles(
                node.entries, e, split_key
            ):
                # Figure 1-3: the boundary cuts this region.  Force-split
                # it (and, recursively, its subtree) on the same boundary.
                inner_part, outer_part = self._force_split(e, split_key)
                inner_entries.append(inner_part)
                outer_entries.append(outer_part)
            else:
                outer_entries.append(e)
        self.stats.max_cascade = max(self.stats.max_cascade, self._cascade)

        inner_node = IndexNode(node.index_level, inner_entries)
        node.entries = outer_entries
        inner_page = self.store.allocate(inner_node, size_class=1)
        self.store.write(node_page, node)
        self._add_to_parent(
            chain[:-1], Entry(split_key, node.index_level, inner_page)
        )

    def _force_split(
        self, entry: Entry, boundary: RegionKey
    ) -> tuple[Entry, Entry]:
        """Split a region about an imposed boundary (cascades downward).

        The inner part takes the boundary key; the outer keeps the
        region's key.  There is no freedom of position, so the resulting
        populations are arbitrary — the unbounded-update, no-minimum-
        occupancy behaviour the BV-tree's promotion avoids.
        """
        self.stats.forced_splits += 1
        self._cascade += 1
        node = self.store.read(entry.page)
        if isinstance(node, DataPage):
            inner = DataPage()
            for p in list(node.records):
                if boundary.contains_path(p, self.space.path_bits):
                    inner.records[p] = node.records.pop(p)
            inner_page = self.store.allocate(inner, size_class=0)
            self.store.write(entry.page, node)
            return (
                Entry(boundary, 0, inner_page),
                Entry(entry.key, 0, entry.page),
            )
        inner_entries: list[Entry] = []
        outer_entries: list[Entry] = []
        for child in list(node.entries):
            if boundary.is_prefix_of(child.key):
                inner_entries.append(child)
            elif child.key.encloses(boundary) and self._straddles(
                node.entries, child, boundary
            ):
                ci, co = self._force_split(child, boundary)
                inner_entries.append(ci)
                outer_entries.append(co)
            else:
                outer_entries.append(child)
        if not inner_entries:
            inner_entries = [self._empty_region(node.index_level - 1, boundary)]
        if not outer_entries:
            outer_entries = [self._empty_region(node.index_level - 1, entry.key)]
        inner_node = IndexNode(node.index_level, inner_entries)
        node.entries = outer_entries
        inner_page = self.store.allocate(inner_node, size_class=1)
        self.store.write(entry.page, node)
        return (
            Entry(boundary, entry.level, inner_page),
            Entry(entry.key, entry.level, entry.page),
        )

    def _empty_region(self, level: int, key: RegionKey) -> Entry:
        """A point-free region covering a block a forced split vacated.

        Forced splits can leave one side with no population at all; the
        structure still needs a region there for coverage.  These empty
        pages are part of the pathology being demonstrated: they are pure
        occupancy loss.
        """
        if level == 0:
            return Entry(key, 0, self.store.allocate(DataPage(), size_class=0))
        child = self._empty_region(level - 1, key)
        node = IndexNode(level, [child])
        return Entry(key, level, self.store.allocate(node, size_class=1))

    # ------------------------------------------------------------------
    # Queries and introspection
    # ------------------------------------------------------------------

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> QueryResult:
        """All records in the half-open box."""
        rect = Rect(lows, highs)
        result = QueryResult()
        stack: list[tuple[int, RegionKey]] = [(self.root_page, ROOT_KEY)]
        while stack:
            page_id, key = stack.pop()
            if not self.space.key_rect(key).intersects(rect):
                continue
            result.pages_visited += 1
            node = self.store.read(page_id)
            if isinstance(node, DataPage):
                result.data_pages_visited += 1
                for point, value in node.records.values():
                    if rect.contains_point(point):
                        result.records.append((point, value))
            else:
                stack.extend((e.page, e.key) for e in node.entries)
        return result

    def occupancies(self) -> tuple[list[int], list[int]]:
        """(data page sizes, index node entry-counts)."""
        data: list[int] = []
        index: list[int] = []
        stack = [self.root_page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, DataPage):
                data.append(len(node.records))
            else:
                index.append(len(node.entries))
                stack.extend(e.page for e in node.entries)
        return data, index

    def check(self) -> None:
        """Verify record placement (longest prefix within each node)."""
        total = 0
        stack: list[tuple[int, RegionKey]] = [(self.root_page, ROOT_KEY)]
        while stack:
            page_id, key = stack.pop()
            node = self.store.read(page_id)
            if isinstance(node, DataPage):
                total += len(node.records)
                for p in node.records:
                    if not key.contains_path(p, self.space.path_bits):
                        raise TreeInvariantError(
                            f"record outside its region {key!r}"
                        )
                continue
            for e in node.entries:
                if not key.is_prefix_of(e.key):
                    raise TreeInvariantError(
                        f"child key {e.key!r} does not extend region {key!r}"
                    )
                stack.append((e.page, e.key))
        if total != self.count:
            raise TreeInvariantError(f"count {self.count} != records {total}")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"BangFile({self.count} records, height={self.height})"
