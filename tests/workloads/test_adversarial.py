"""Tests for the adversarial sequences."""

import pytest

from repro.errors import ReproError
from repro.workloads import nested_hotspot, promotion_storm, sequential_1d


class TestNestedHotspot:
    def test_bounds_and_count(self):
        points = list(nested_hotspot(300, 2, seed=1))
        assert len(points) == 300
        assert all(0 <= x < 1 for p in points for x in p)

    def test_mass_concentrates_at_corner(self):
        points = list(nested_hotspot(2000, 2, ratio=0.8, seed=2))
        tiny = sum(1 for p in points if all(x < 2**-6 for x in p))
        assert tiny > 100  # deep nesting really happens

    def test_custom_corner(self):
        points = list(
            nested_hotspot(500, 2, corner=(0.5, 0.5), ratio=0.7, seed=3)
        )
        near = sum(1 for p in points if all(0.5 <= x < 0.51 for x in p))
        assert near > 50

    def test_validation(self):
        with pytest.raises(ReproError):
            list(nested_hotspot(10, 2, ratio=1.5))
        with pytest.raises(ReproError):
            list(nested_hotspot(10, 2, corner=(0.1,)))
        with pytest.raises(ReproError):
            list(nested_hotspot(-1, 2))


class TestPromotionStorm:
    def test_bounds_and_count(self):
        points = list(promotion_storm(300, 3, seed=4))
        assert len(points) == 300
        assert all(0 <= x < 1 for p in points for x in p)

    def test_forces_promotions_in_bv_tree(self, unit2):
        from repro.core.tree import BVTree

        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(promotion_storm(1500, 2, seed=5)):
            tree.insert(p, i, replace=True)
        assert tree.stats.promotions > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            list(promotion_storm(-1, 2))


class TestSequential1D:
    def test_monotone(self):
        points = list(sequential_1d(100))
        values = [p[0] for p in points]
        assert values == sorted(values)

    def test_padding_dimensions(self):
        points = list(sequential_1d(10, ndim=3))
        assert all(len(p) == 3 and p[1] == p[2] == 0.5 for p in points)

    def test_validation(self):
        with pytest.raises(ReproError):
            list(sequential_1d(-1))
