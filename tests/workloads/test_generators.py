"""Tests for the workload generators."""

import pytest

from repro.errors import ReproError
from repro.workloads import (
    clustered,
    diagonal,
    grid,
    skewed,
    uniform,
    zipf_grid,
)

ALL_GENERATORS = [uniform, clustered, skewed, diagonal, grid, zipf_grid]


class TestCommonContract:
    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_count_and_bounds(self, gen):
        points = list(gen(200, 3, seed=1))
        assert len(points) == 200
        for p in points:
            assert len(p) == 3
            assert all(0.0 <= x < 1.0 for x in p)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_deterministic_given_seed(self, gen):
        assert list(gen(50, 2, seed=9)) == list(gen(50, 2, seed=9))

    @pytest.mark.parametrize("gen", [uniform, clustered, skewed, zipf_grid])
    def test_seeds_differ(self, gen):
        assert list(gen(50, 2, seed=1)) != list(gen(50, 2, seed=2))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_zero_points(self, gen):
        assert list(gen(0, 2)) == []

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_rejects_negative(self, gen):
        with pytest.raises(ReproError):
            list(gen(-1, 2))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_rejects_zero_dimensions(self, gen):
        with pytest.raises(ReproError):
            list(gen(10, 0))


class TestShapes:
    def test_clustered_is_clustered(self):
        points = list(clustered(2000, 2, clusters=3, spread=0.01, seed=3))
        # Nearly all mass within 3 tight blobs: the bounding boxes of
        # point neighbourhoods are tiny compared to the space.
        xs = sorted(p[0] for p in points)
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert max(gaps) > 0.05  # visible empty space between clusters

    def test_skewed_concentrates_at_origin(self):
        points = list(skewed(2000, 1, exponent=4.0, seed=4))
        below = sum(1 for (x,) in points if x < 0.1)
        assert below > len(points) * 0.4

    def test_diagonal_correlation(self):
        points = list(diagonal(500, 2, jitter=0.005, seed=5))
        assert all(abs(x - y) < 0.02 for x, y in points)

    def test_grid_is_duplicate_free(self):
        points = list(grid(400, 2))
        assert len(set(points)) == len(points)

    def test_zipf_has_hot_cells(self):
        from collections import Counter

        points = list(zipf_grid(3000, 1, cells_per_dim=32, s=1.5, seed=6))
        cells = Counter(int(x * 32) for (x,) in points)
        top = cells.most_common(1)[0][1]
        assert top > 3000 / 32 * 3  # far above the uniform share

    def test_cluster_parameter_validation(self):
        with pytest.raises(ReproError):
            list(clustered(10, 2, clusters=0))
        with pytest.raises(ReproError):
            list(skewed(10, 2, exponent=0))
        with pytest.raises(ReproError):
            list(zipf_grid(10, 2, cells_per_dim=0))
