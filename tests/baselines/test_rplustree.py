"""Unit tests for the R+-tree baseline (object clipping instrumented)."""

import random

import pytest

from repro.errors import GeometryError, TreeInvariantError
from repro.baselines.rplustree import RPlusTree
from repro.geometry.rect import Rect


def random_rects(n, seed=1, max_side=0.05):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        w, h = rng.uniform(1e-3, max_side), rng.uniform(1e-3, max_side)
        out.append(Rect((x, y), (x + w, y + h)))
    return out


@pytest.fixture
def rp(unit2):
    return RPlusTree(unit2, capacity=8)


class TestInsertAndQuery:
    def test_roundtrip_with_dedup(self, rp):
        objects = random_rects(800)
        for i, r in enumerate(objects):
            rp.insert(r, i)
        rp.check()
        q = Rect((0.25, 0.25), (0.55, 0.65))
        got, _ = rp.intersecting(q)
        expected = {i for i, r in enumerate(objects) if r.intersects(q)}
        assert {v for _, v in got} == expected
        # Copies never appear twice in a result.
        assert len(got) == len(expected)

    def test_stabbing_query(self, rp):
        objects = random_rects(600, seed=2)
        for i, r in enumerate(objects):
            rp.insert(r, i)
        p = (0.33, 0.44)
        got, _ = rp.containing_point(p)
        expected = {i for i, r in enumerate(objects) if r.contains_point(p)}
        assert {v for _, v in got} == expected

    def test_regions_stay_disjoint(self, rp):
        for i, r in enumerate(random_rects(1200, seed=3)):
            rp.insert(r, i)
        rp.check()  # includes pairwise disjointness of sibling regions

    def test_rejects_out_of_space(self, rp):
        with pytest.raises(GeometryError):
            rp.insert(Rect((0.9, 0.9), (1.2, 1.2)))

    def test_rejects_tiny_capacity(self, unit2):
        with pytest.raises(TreeInvariantError):
            RPlusTree(unit2, capacity=2)


class TestDuplication:
    def test_copies_counted(self, rp):
        objects = random_rects(800, seed=4, max_side=0.08)
        for i, r in enumerate(objects):
            rp.insert(r, i)
        assert rp.stored_copies() >= len(rp)
        assert rp.stored_copies() - len(rp) > 0  # duplication happened
        assert rp.stats.object_copies == rp.stored_copies() - len(rp)

    def test_bigger_objects_duplicate_more(self, unit2):
        def copies_for(max_side):
            tree = RPlusTree(unit2, capacity=8)
            for i, r in enumerate(random_rects(500, seed=5, max_side=max_side)):
                tree.insert(r, i)
            return tree.stored_copies() / len(tree)

        small = copies_for(0.005)
        large = copies_for(0.1)
        # §1: splitting objects into parts grows with object extent —
        # "the uncontrollable update characteristics we are trying to
        # avoid (and which, for example, the R+ tree also shows)".
        assert large > small

    def test_forced_partitions_recorded(self, rp):
        for i, r in enumerate(random_rects(800, seed=6, max_side=0.08)):
            rp.insert(r, i)
        assert rp.stats.forced_partitions > 0

    def test_point_objects_never_duplicate(self, unit2):
        rp = RPlusTree(unit2, capacity=8)
        rng = random.Random(7)
        eps = 1e-9
        for i in range(500):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            rp.insert(Rect((x, y), (x + eps, y + eps)), i)
        # Degenerate (point-like) objects never straddle a cut whose
        # position is an object edge.
        assert rp.stored_copies() == len(rp)
