"""Unit tests for the K-D-B tree baseline (cascade behaviour included)."""

import random

import pytest

from repro.errors import DuplicateKeyError, GeometryError, KeyNotFoundError
from repro.baselines.kdbtree import KDBTree
from tests.conftest import make_points


@pytest.fixture
def kdb(unit2):
    return KDBTree(unit2, data_capacity=8, fanout=8)


class TestPointOps:
    def test_insert_get(self, kdb):
        kdb.insert((0.3, 0.7), "x")
        assert kdb.get((0.3, 0.7)) == "x"
        assert len(kdb) == 1

    def test_missing(self, kdb):
        with pytest.raises(KeyNotFoundError):
            kdb.get((0.1, 0.1))

    def test_duplicate(self, kdb):
        kdb.insert((0.3, 0.7), 1)
        with pytest.raises(DuplicateKeyError):
            kdb.insert((0.3, 0.7), 2)
        kdb.insert((0.3, 0.7), 2, replace=True)
        assert kdb.get((0.3, 0.7)) == 2

    def test_out_of_space(self, kdb):
        with pytest.raises(GeometryError):
            kdb.insert((2.0, 0.5), 1)

    def test_delete_is_simple_removal(self, kdb):
        kdb.insert((0.3, 0.7), "x")
        assert kdb.delete((0.3, 0.7)) == "x"
        assert len(kdb) == 0
        with pytest.raises(KeyNotFoundError):
            kdb.delete((0.3, 0.7))


class TestStructure:
    def test_bulk_roundtrip_and_partition(self, kdb):
        points = make_points(1500, 2, seed=16)
        for i, p in enumerate(points):
            kdb.insert(p, i, replace=True)
        kdb.check()  # disjointness + tiling + containment
        for i, p in enumerate(points[:200]):
            kdb.get(p)

    def test_search_cost_is_path_length(self, kdb):
        for i, p in enumerate(make_points(800, 2, seed=17)):
            kdb.insert(p, i, replace=True)
        assert kdb.search_cost((0.5, 0.5)) == kdb.height + 1

    def test_range_query_matches_brute_force(self, kdb):
        points = make_points(1000, 2, seed=18)
        for i, p in enumerate(points):
            kdb.insert(p, i, replace=True)
        result = kdb.range_query((0.2, 0.3), (0.5, 0.6))
        expected = {
            p
            for p in set(points)
            if 0.2 <= p[0] < 0.5 and 0.3 <= p[1] < 0.6
        }
        assert set(result.points()) == expected


class TestCascades:
    def test_forced_splits_happen(self, unit2):
        # The defining K-D-B pathology (paper Fig. 1-2): with enough
        # data, directory splits cut children and cascade.
        kdb = KDBTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(3000, 2, seed=19)):
            kdb.insert(p, i, replace=True)
        assert kdb.stats.forced_splits > 0
        assert kdb.stats.max_cascade >= 1
        kdb.check()

    def test_forced_splits_break_occupancy(self, unit2):
        kdb = KDBTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(3000, 2, seed=19)):
            kdb.insert(p, i, replace=True)
        data, _ = kdb.occupancies()
        # No minimum can be guaranteed: cascades create underfull (even
        # empty) pages.
        assert min(data) < -(-4 // 3)

    def test_three_dimensions(self, unit3):
        kdb = KDBTree(unit3, data_capacity=6, fanout=6)
        points = make_points(1200, 3, seed=20)
        for i, p in enumerate(points):
            kdb.insert(p, i, replace=True)
        kdb.check()
        for p in random.Random(21).sample(points, 100):
            kdb.get(p)
