"""Unit tests for the balanced-directory BANG file (Figure 1-3 behaviour)."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.baselines.bangfile import BangFile
from tests.conftest import make_points


@pytest.fixture
def bang(unit2):
    return BangFile(unit2, data_capacity=8, fanout=8)


class TestPointOps:
    def test_insert_get(self, bang):
        bang.insert((0.2, 0.8), "v")
        assert bang.get((0.2, 0.8)) == "v"

    def test_missing(self, bang):
        with pytest.raises(KeyNotFoundError):
            bang.get((0.5, 0.5))

    def test_duplicate(self, bang):
        bang.insert((0.2, 0.8), 1)
        with pytest.raises(DuplicateKeyError):
            bang.insert((0.2, 0.8), 2)

    def test_bulk_roundtrip(self, bang):
        points = make_points(1200, 2, seed=22)
        for i, p in enumerate(points):
            bang.insert(p, i, replace=True)
        bang.check()
        for i, p in enumerate(points[:300]):
            bang.get(p)

    def test_search_cost(self, bang):
        for i, p in enumerate(make_points(600, 2, seed=23)):
            bang.insert(p, i, replace=True)
        assert bang.search_cost((0.5, 0.5)) == bang.height + 1

    def test_range_query(self, bang):
        points = make_points(800, 2, seed=24)
        for i, p in enumerate(points):
            bang.insert(p, i, replace=True)
        result = bang.range_query((0.1, 0.1), (0.4, 0.4))
        expected = {
            p for p in set(points) if 0.1 <= p[0] < 0.4 and 0.1 <= p[1] < 0.4
        }
        assert set(result.points()) == expected


class TestForcedSplits:
    def test_directory_splits_force_region_splits(self, unit2):
        # Figure 1-3: the balanced directory boundary cuts subspaces;
        # without guards the BANG file must split them downward.
        bang = BangFile(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(3000, 2, seed=25)):
            bang.insert(p, i, replace=True)
        assert bang.stats.forced_splits > 0
        bang.check()

    def test_forced_splits_destroy_occupancy(self, unit2):
        bang = BangFile(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(3000, 2, seed=25)):
            bang.insert(p, i, replace=True)
        data, index = bang.occupancies()
        assert min(data) < -(-4 // 3)

    def test_cascade_depth_recorded(self, unit2):
        bang = BangFile(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(3000, 2, seed=25)):
            bang.insert(p, i, replace=True)
        assert bang.stats.max_cascade >= 1

    def test_clustered_data_still_correct(self, unit2):
        from repro.workloads import clustered

        bang = BangFile(unit2, data_capacity=4, fanout=4)
        points = list(clustered(2000, 2, clusters=3, seed=26))
        for i, p in enumerate(points):
            bang.insert(p, i, replace=True)
        bang.check()
        found = sum(
            1
            for p in set(points)
            if bang.get(p) is not None or True
        )
        assert found == len(set(points))
