"""Unit tests for the B+-tree baseline."""

import random

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, TreeInvariantError
from repro.baselines.btree import BPlusTree


@pytest.fixture
def tree():
    return BPlusTree(leaf_capacity=4, fanout=4)


class TestBasics:
    def test_insert_get(self, tree):
        tree.insert(5, "five")
        tree.insert(3, "three")
        assert tree.get(5) == "five"
        assert tree.get(3) == "three"
        assert len(tree) == 2

    def test_missing_key(self, tree):
        with pytest.raises(KeyNotFoundError):
            tree.get(1)

    def test_duplicate(self, tree):
        tree.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, "b")
        tree.insert(1, "b", replace=True)
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_contains(self, tree):
        tree.insert(1, None)
        assert tree.contains(1)
        assert not tree.contains(2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(TreeInvariantError):
            BPlusTree(leaf_capacity=1)
        with pytest.raises(TreeInvariantError):
            BPlusTree(fanout=2)


class TestBulk:
    @pytest.mark.parametrize("order", ["sorted", "reversed", "shuffled"])
    def test_thousand_keys(self, tree, order):
        keys = list(range(1000))
        if order == "reversed":
            keys.reverse()
        elif order == "shuffled":
            random.Random(5).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 10)
        tree.check()
        for k in range(1000):
            assert tree.get(k) == k * 10
        assert [k for k, _ in tree.items()] == list(range(1000))

    def test_height_logarithmic(self, tree):
        for k in range(1000):
            tree.insert(k, None)
        assert tree.height <= 7

    def test_search_cost_is_height_plus_one(self, tree):
        for k in range(500):
            tree.insert(k, None)
        assert tree.search_cost(250) == tree.height + 1

    def test_occupancy_at_least_half(self, tree):
        random_keys = random.Random(6).sample(range(10000), 2000)
        for k in random_keys:
            tree.insert(k, None)
        leaves, branches = tree.node_occupancies()
        assert min(leaves) >= tree.leaf_capacity // 2
        if len(branches) > 1:
            assert min(branches) >= 2


class TestRangeScan:
    def test_range(self, tree):
        for k in range(100):
            tree.insert(k, -k)
        records, pages = tree.range_scan(10, 20)
        assert [k for k, _ in records] == list(range(10, 20))
        assert pages >= 1

    def test_empty_range(self, tree):
        for k in range(100):
            tree.insert(k, None)
        records, _ = tree.range_scan(200, 300)
        assert records == []

    def test_float_keys(self, tree):
        keys = [0.5, 0.1, 0.9, 0.3]
        for k in keys:
            tree.insert(k, k)
        records, _ = tree.range_scan(0.2, 0.6)
        assert sorted(k for k, _ in records) == [0.3, 0.5]


class TestDeletion:
    def test_delete_returns_value(self, tree):
        tree.insert(7, "seven")
        assert tree.delete(7) == "seven"
        assert len(tree) == 0
        with pytest.raises(KeyNotFoundError):
            tree.delete(7)

    def test_delete_everything_random_order(self, tree):
        keys = list(range(600))
        rng = random.Random(8)
        for k in keys:
            tree.insert(k, k)
        rng.shuffle(keys)
        for i, k in enumerate(keys):
            assert tree.delete(k) == k
            if i % 100 == 0:
                tree.check()
        assert len(tree) == 0
        assert tree.height == 0

    def test_delete_maintains_occupancy(self, tree):
        for k in range(1000):
            tree.insert(k, None)
        rng = random.Random(9)
        victims = rng.sample(range(1000), 600)
        for k in victims:
            tree.delete(k)
        tree.check()
        remaining = sorted(set(range(1000)) - set(victims))
        assert [k for k, _ in tree.items()] == remaining

    def test_interleaved_ops(self, tree):
        rng = random.Random(10)
        live = {}
        for step in range(3000):
            if live and rng.random() < 0.5:
                k = rng.choice(list(live))
                assert tree.delete(k) == live.pop(k)
            else:
                k = rng.randrange(10_000)
                if k in live:
                    continue
                tree.insert(k, step)
                live[k] = step
        tree.check()
        assert len(tree) == len(live)
