"""Unit tests for the R-tree baseline."""

import random

import pytest

from repro.errors import GeometryError, KeyNotFoundError, TreeInvariantError
from repro.baselines.rtree import RTree, _mbr
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace


def random_rects(n, seed=1, max_side=0.05):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        w, h = rng.uniform(1e-3, max_side), rng.uniform(1e-3, max_side)
        out.append(Rect((x, y), (x + w, y + h)))
    return out


@pytest.fixture
def rt(unit2):
    return RTree(unit2, capacity=8)


class TestMBR:
    def test_mbr_of_two(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 0.5), (3.0, 2.0))
        assert _mbr([a, b]) == Rect((0.0, 0.0), (3.0, 2.0))

    def test_mbr_of_one(self):
        a = Rect((0.1, 0.2), (0.3, 0.4))
        assert _mbr([a]) == a


class TestInsertAndQuery:
    def test_roundtrip(self, rt):
        objects = random_rects(1000)
        for i, r in enumerate(objects):
            rt.insert(r, i)
        rt.check()
        assert len(rt) == 1000
        q = Rect((0.2, 0.2), (0.6, 0.6))
        got, pages = rt.intersecting(q)
        expected = {i for i, r in enumerate(objects) if r.intersects(q)}
        assert {v for _, v in got} == expected
        assert pages >= 1

    def test_stabbing(self, rt):
        objects = random_rects(800, seed=2)
        for i, r in enumerate(objects):
            rt.insert(r, i)
        p = (0.45, 0.55)
        got, _ = rt.containing_point(p)
        expected = {i for i, r in enumerate(objects) if r.contains_point(p)}
        assert {v for _, v in got} == expected

    def test_items(self, rt):
        objects = random_rects(50, seed=3)
        for i, r in enumerate(objects):
            rt.insert(r, i)
        assert len(list(rt.items())) == 50

    def test_rejects_out_of_space(self, rt):
        with pytest.raises(GeometryError):
            rt.insert(Rect((0.9, 0.9), (1.1, 1.1)))

    def test_rejects_dim_mismatch(self, rt):
        with pytest.raises(GeometryError):
            rt.insert(Rect((0.1,), (0.2,)))

    def test_rejects_tiny_capacity(self, unit2):
        with pytest.raises(TreeInvariantError):
            RTree(unit2, capacity=3)

    def test_splits_recorded(self, rt):
        for i, r in enumerate(random_rects(500, seed=4)):
            rt.insert(r, i)
        assert rt.stats.leaf_splits > 0
        assert rt.height >= 1


class TestDeletion:
    def test_delete_and_requery(self, rt):
        objects = random_rects(600, seed=5)
        for i, r in enumerate(objects):
            rt.insert(r, i)
        for i, r in enumerate(objects[:300]):
            rt.delete(r, i)
        rt.check()
        assert len(rt) == 300
        q = Rect((0.0, 0.0), (1.0, 1.0))
        got, _ = rt.intersecting(q)
        assert {v for _, v in got} == set(range(300, 600))

    def test_delete_missing(self, rt):
        rt.insert(Rect((0.1, 0.1), (0.2, 0.2)), "x")
        with pytest.raises(KeyNotFoundError):
            rt.delete(Rect((0.3, 0.3), (0.4, 0.4)), "x")

    def test_delete_everything(self, rt):
        objects = random_rects(300, seed=6)
        for i, r in enumerate(objects):
            rt.insert(r, i)
        for i, r in enumerate(objects):
            rt.delete(r, i)
        assert len(rt) == 0
        got, _ = rt.intersecting(Rect((0.0, 0.0), (1.0, 1.0)))
        assert got == []

    def test_condense_reinserts(self, rt):
        objects = random_rects(400, seed=7)
        for i, r in enumerate(objects):
            rt.insert(r, i)
        rng = random.Random(8)
        order = list(enumerate(objects))
        rng.shuffle(order)
        for i, r in order[:350]:
            rt.delete(r, i)
        rt.check()
        assert len(rt) == 50


class TestOverlapPathology:
    def test_overlap_costs_pages(self, unit2):
        # Elongated crossing objects force heavy MBR overlap; a stabbing
        # query then descends multiple subtrees — the unbounded-search
        # behaviour §8's dual representation eliminates.
        rt = RTree(unit2, capacity=8)
        rng = random.Random(9)
        for i in range(600):
            if i % 2 == 0:
                x, y = rng.random() * 0.5, rng.random() * 0.95
                rt.insert(Rect((x, y), (x + 0.45, y + 0.003)), i)
            else:
                x, y = rng.random() * 0.95, rng.random() * 0.5
                rt.insert(Rect((x, y), (x + 0.003, y + 0.45)), i)
        _, pages = rt.containing_point((0.5, 0.5))
        assert pages > rt.height + 1  # more than one root-leaf path
