"""Unit tests for the Z-order B-tree baseline."""

import random

import pytest

from repro.errors import GeometryError, KeyNotFoundError
from repro.baselines.zbtree import ZOrderBTree
from repro.geometry.rect import Rect
from tests.conftest import make_points


@pytest.fixture
def zb(unit2):
    return ZOrderBTree(unit2, leaf_capacity=8, fanout=8)


class TestPointOps:
    def test_insert_get_delete(self, zb):
        zb.insert((0.25, 0.75), "a")
        assert zb.get((0.25, 0.75)) == "a"
        assert zb.contains((0.25, 0.75))
        assert zb.delete((0.25, 0.75)) == "a"
        assert not zb.contains((0.25, 0.75))

    def test_missing(self, zb):
        with pytest.raises(KeyNotFoundError):
            zb.get((0.1, 0.1))

    def test_bulk_roundtrip(self, zb):
        points = make_points(1000, 2, seed=11)
        for i, p in enumerate(points):
            zb.insert(p, i, replace=True)
        zb.tree.check()
        for i, p in enumerate(points):
            assert zb.get(p) == i
        assert len(zb) == len(set(points))

    def test_search_cost_matches_btree(self, zb):
        for i, p in enumerate(make_points(1000, 2, seed=12)):
            zb.insert(p, i, replace=True)
        assert zb.search_cost((0.4, 0.4)) == zb.height + 1


class TestZIntervals:
    def test_full_space_one_interval(self, zb):
        intervals = zb.z_intervals(Rect((0.0, 0.0), (1.0, 1.0)))
        assert intervals == [(0, 2**zb.space.path_bits - 1)]

    def test_quadrant_is_one_interval(self, zb):
        # [0, .5) x [0, .5) is exactly the '00' block: contiguous codes.
        intervals = zb.z_intervals(Rect((0.0, 0.0), (0.5, 0.5)))
        assert len(intervals) == 1

    def test_cross_boundary_box_fragments(self, zb):
        # A centred box cuts across the top-level Z boundary.
        intervals = zb.z_intervals(Rect((0.25, 0.25), (0.75, 0.75)))
        assert len(intervals) > 1

    def test_interval_budget_respected(self, unit2):
        zb = ZOrderBTree(unit2, max_intervals=8)
        intervals = zb.z_intervals(Rect((0.11, 0.13), (0.57, 0.83)))
        assert len(intervals) <= 8 + 2  # merge may reduce below budget

    def test_intervals_disjoint_and_sorted(self, zb):
        intervals = zb.z_intervals(Rect((0.1, 0.2), (0.6, 0.9)))
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert a1 < b0


class TestRangeQuery:
    def test_matches_brute_force(self, zb):
        points = make_points(1500, 2, seed=13)
        for i, p in enumerate(points):
            zb.insert(p, i, replace=True)
        rng = random.Random(14)
        for _ in range(15):
            lows = (rng.uniform(0, 0.7), rng.uniform(0, 0.7))
            highs = (lows[0] + rng.uniform(0.05, 0.3), lows[1] + rng.uniform(0.05, 0.3))
            result = zb.range_query(lows, highs)
            expected = {
                p
                for p in set(points)
                if lows[0] <= p[0] < highs[0] and lows[1] <= p[1] < highs[1]
            }
            assert set(result.points()) == expected

    def test_dim_mismatch(self, zb):
        with pytest.raises(GeometryError):
            zb.range_query((0.0,), (1.0,))

    def test_partial_match(self, zb):
        x = 0.625  # exactly representable, stable grid cell
        for i in range(30):
            zb.insert((x, i / 30), i, replace=True)
        for p in make_points(300, 2, seed=15):
            zb.insert(p, None, replace=True)
        result = zb.partial_match({0: x})
        assert sum(1 for p in result.points() if p[0] == x) == 30

    def test_partial_match_bad_constraint(self, zb):
        with pytest.raises(GeometryError):
            zb.partial_match({0: 2.0})
