"""Unit tests for the first-partition (LSD-style) splitter."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.baselines.lsdtree import LSDTree
from tests.conftest import make_points


@pytest.fixture
def lsd(unit2):
    return LSDTree(unit2, data_capacity=8, fanout=8)


class TestPointOps:
    def test_insert_get(self, lsd):
        lsd.insert((0.6, 0.4), "v")
        assert lsd.get((0.6, 0.4)) == "v"

    def test_missing(self, lsd):
        with pytest.raises(KeyNotFoundError):
            lsd.get((0.5, 0.5))

    def test_duplicate(self, lsd):
        lsd.insert((0.6, 0.4), 1)
        with pytest.raises(DuplicateKeyError):
            lsd.insert((0.6, 0.4), 2)

    def test_bulk_roundtrip(self, lsd):
        points = make_points(1200, 2, seed=27)
        for i, p in enumerate(points):
            lsd.insert(p, i, replace=True)
        lsd.check()
        for p in points[:300]:
            lsd.get(p)

    def test_search_cost(self, lsd):
        for i, p in enumerate(make_points(600, 2, seed=28)):
            lsd.insert(p, i, replace=True)
        assert lsd.search_cost((0.5, 0.5)) == lsd.height + 1

    def test_range_query(self, lsd):
        points = make_points(800, 2, seed=29)
        for i, p in enumerate(points):
            lsd.insert(p, i, replace=True)
        result = lsd.range_query((0.5, 0.5), (0.9, 0.8))
        expected = {
            p for p in set(points) if 0.5 <= p[0] < 0.9 and 0.5 <= p[1] < 0.8
        }
        assert set(result.points()) == expected


class TestOccupancySkew:
    def test_no_cascades_by_construction(self, unit2):
        # First-partition splits never cut an entry, so there is nothing
        # to cascade — the design trades that for occupancy control.
        lsd = LSDTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(2500, 2, seed=30)):
            lsd.insert(p, i, replace=True)
        lsd.check()

    def test_skewed_data_starves_directory_pages(self, unit2):
        from repro.workloads import skewed

        lsd = LSDTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(skewed(2500, 2, exponent=6.0, seed=31)):
            lsd.insert(p, i, replace=True)
        _, index = lsd.occupancies()
        # §1's critique: no control over directory occupancy.  Skewed
        # data leaves some directory pages nearly empty.
        assert min(index) <= 2

    def test_empty_coverage_blocks_counted(self, unit2):
        from repro.workloads import nested_hotspot

        lsd = LSDTree(unit2, data_capacity=4, fanout=8)
        for i, p in enumerate(nested_hotspot(800, 2, seed=32)):
            lsd.insert(p, i, replace=True)
        data, _ = lsd.occupancies()
        # The trie keeps explicit empty blocks for coverage; hotspot data
        # produces many of them (pure occupancy loss).
        assert data.count(0) > 0
        lsd.check()
