"""Bit-native query geometry must agree exactly with the float decode."""

import random

import pytest

from repro.errors import DimensionMismatchError
from repro.core.knn import _min_dist_sq
from repro.geometry.bitgrid import (
    key_intersects,
    key_min_dist_sq,
    key_origins,
    query_cell_bounds,
)
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace


def random_key(rng: random.Random, path_bits: int) -> RegionKey:
    nbits = rng.randrange(0, path_bits + 1)
    return RegionKey(nbits, rng.getrandbits(nbits) if nbits else 0)


def all_keys_to_depth(depth: int):
    for nbits in range(depth + 1):
        for value in range(1 << nbits):
            yield RegionKey(nbits, value)


class TestKeyOrigins:
    def test_root_key_is_whole_grid(self):
        origins, halvings = key_origins(0, 0, 2, 8)
        assert origins == [0, 0]
        assert halvings == [0, 0]

    def test_matches_key_rect_decode(self, unit2):
        rng = random.Random(11)
        cells = 1 << unit2.resolution
        for _ in range(200):
            key = random_key(rng, unit2.path_bits)
            origins, halvings = key_origins(
                key.value, key.nbits, unit2.ndim, unit2.resolution
            )
            rect = unit2.decode_rect(key)
            for dim in range(unit2.ndim):
                lo, _ = unit2.bounds[dim]
                span = unit2.spans[dim]
                assert rect.lows[dim] == pytest.approx(
                    lo + origins[dim] / cells * span, abs=0.0
                )
                width = cells >> halvings[dim]
                assert rect.highs[dim] == pytest.approx(
                    lo + (origins[dim] + width) / cells * span, abs=0.0
                )


class TestIntersectionEquivalence:
    """key_intersects must equal key_rect(key).intersects(rect) everywhere."""

    def assert_equivalent(self, space, rect, keys):
        bounds = query_cell_bounds(space, rect)
        for key in keys:
            expected = space.decode_rect(key).intersects(rect)
            got = key_intersects(
                key.value, key.nbits, space.ndim, space.resolution, bounds
            )
            assert got == expected, (key, rect)

    def test_exhaustive_small_space(self):
        space = DataSpace.unit(2, resolution=3)
        keys = list(all_keys_to_depth(space.path_bits))
        rng = random.Random(5)
        for _ in range(60):
            lows = tuple(rng.uniform(0.0, 0.9) for _ in range(2))
            highs = tuple(lo + rng.uniform(0.01, 0.5) for lo in lows)
            self.assert_equivalent(space, Rect(lows, highs), keys)

    def test_cell_aligned_query_edges(self):
        # Query edges sitting exactly on block boundaries are where a
        # strict-vs-nonstrict slip would change the visit set.
        space = DataSpace.unit(2, resolution=3)
        keys = list(all_keys_to_depth(space.path_bits))
        cells = 1 << space.resolution
        for i in range(cells):
            for j in range(i + 1, cells + 1):
                rect = Rect((i / cells, 0.25), (j / cells, 0.75))
                self.assert_equivalent(space, rect, keys)

    def test_random_keys_nonunit_bounds(self):
        space = DataSpace([(-3.0, 5.0), (10.0, 11.0)], resolution=10)
        rng = random.Random(9)
        keys = [random_key(rng, space.path_bits) for _ in range(300)]
        for _ in range(40):
            lows = (rng.uniform(-3.0, 4.0), rng.uniform(10.0, 10.9))
            highs = (
                lows[0] + rng.uniform(0.01, 2.0),
                lows[1] + rng.uniform(0.001, 0.1),
            )
            self.assert_equivalent(space, Rect(lows, highs), keys)

    def test_degenerate_and_outside_queries(self, unit2):
        keys = [ROOT_KEY, RegionKey(1, 0), RegionKey(2, 3)]
        # Queries clamped at the domain edge and far outside it.
        for rect in (
            Rect((0.0, 0.0), (1.0, 1.0)),
            Rect((0.999, 0.999), (1.0, 1.0)),
            Rect((2.0, 2.0), (3.0, 3.0)),
            Rect((-5.0, -5.0), (-4.0, -4.0)),
        ):
            self.assert_equivalent(unit2, rect, keys)

    def test_dimension_mismatch_rejected(self, unit2):
        with pytest.raises(DimensionMismatchError):
            query_cell_bounds(unit2, Rect((0.0,), (1.0,)))


class TestMinDistEquivalence:
    def test_matches_rect_lower_bound(self, unit3):
        rng = random.Random(21)
        for _ in range(300):
            key = random_key(rng, unit3.path_bits)
            point = tuple(rng.uniform(-0.2, 1.2) for _ in range(3))
            expected = _min_dist_sq(point, unit3.decode_rect(key))
            assert key_min_dist_sq(unit3, key, point) == expected

    def test_zero_inside_block(self, unit2):
        key = RegionKey(2, 0)  # lower-left quadrant
        assert key_min_dist_sq(unit2, key, (0.1, 0.1)) == 0.0
