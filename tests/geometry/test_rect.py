"""Unit tests for axis-aligned rectangles."""

import pytest

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.rect import Rect


class TestConstruction:
    def test_basic(self):
        r = Rect((0.0, 0.0), (1.0, 2.0))
        assert r.ndim == 2
        assert r.lows == (0.0, 0.0)
        assert r.highs == (1.0, 2.0)

    def test_coerces_to_float(self):
        r = Rect((0, 1), (2, 3))
        assert all(isinstance(v, float) for v in r.lows + r.highs)

    def test_rejects_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Rect((0.0,), (1.0, 2.0))

    def test_rejects_empty_interval(self):
        with pytest.raises(GeometryError):
            Rect((0.0, 0.5), (1.0, 0.5))

    def test_rejects_inverted_interval(self):
        with pytest.raises(GeometryError):
            Rect((1.0,), (0.0,))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_immutable(self):
        r = Rect((0.0,), (1.0,))
        with pytest.raises(AttributeError):
            r.lows = (0.5,)


class TestContainsPoint:
    def test_interior(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.contains_point((0.5, 0.5))

    def test_low_edge_included(self):
        r = Rect((0.0,), (1.0,))
        assert r.contains_point((0.0,))

    def test_high_edge_excluded(self):
        r = Rect((0.0,), (1.0,))
        assert not r.contains_point((1.0,))

    def test_outside(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert not r.contains_point((1.5, 0.5))

    def test_dim_mismatch(self):
        r = Rect((0.0,), (1.0,))
        with pytest.raises(DimensionMismatchError):
            r.contains_point((0.5, 0.5))


class TestIntersection:
    def test_overlapping(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((1.0, 1.0), (3.0, 3.0))
        assert a.intersects(b)
        assert a.intersection(b) == Rect((1.0, 1.0), (2.0, 2.0))

    def test_touching_edges_do_not_intersect(self):
        a = Rect((0.0,), (1.0,))
        b = Rect((1.0,), (2.0,))
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_nested(self):
        outer = Rect((0.0, 0.0), (4.0, 4.0))
        inner = Rect((1.0, 1.0), (2.0, 2.0))
        assert outer.intersects(inner)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.intersection(inner) == inner

    def test_self_containment(self):
        r = Rect((0.0,), (1.0,))
        assert r.contains_rect(r)

    def test_disjoint(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 2.0), (3.0, 3.0))
        assert not a.intersects(b)

    def test_dim_mismatch(self):
        a = Rect((0.0,), (1.0,))
        b = Rect((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(DimensionMismatchError):
            a.intersects(b)


class TestMeasures:
    def test_volume(self):
        assert Rect((0.0, 0.0), (2.0, 3.0)).volume() == pytest.approx(6.0)

    def test_sides(self):
        assert list(Rect((0.0, 1.0), (2.0, 4.0)).sides()) == [2.0, 3.0]

    def test_center(self):
        assert Rect((0.0, 0.0), (2.0, 4.0)).center() == (1.0, 2.0)


class TestDunder:
    def test_equality_and_hash(self):
        a = Rect((0.0,), (1.0,))
        b = Rect((0.0,), (1.0,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect((0.0,), (2.0,))

    def test_not_equal_other_type(self):
        assert Rect((0.0,), (1.0,)) != "rect"

    def test_repr(self):
        assert "[0," in repr(Rect((0.0,), (1.0,))).replace(" ", "")
