"""Unit tests for the data space and bit-path encoding."""

import random

import pytest

from repro.errors import (
    DimensionMismatchError,
    GeometryError,
    OutOfSpaceError,
)
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace


class TestConstruction:
    def test_unit(self):
        s = DataSpace.unit(3)
        assert s.ndim == 3
        assert s.bounds == ((0.0, 1.0),) * 3
        assert s.path_bits == 3 * 32

    def test_custom_bounds(self):
        s = DataSpace([(-10.0, 10.0), (0.0, 100.0)], resolution=8)
        assert s.ndim == 2
        assert s.path_bits == 16

    def test_rejects_empty_domain(self):
        with pytest.raises(GeometryError):
            DataSpace([(1.0, 1.0)])

    def test_rejects_no_dimensions(self):
        with pytest.raises(GeometryError):
            DataSpace([])

    def test_rejects_bad_resolution(self):
        with pytest.raises(GeometryError):
            DataSpace.unit(1, resolution=0)
        with pytest.raises(GeometryError):
            DataSpace.unit(1, resolution=65)

    def test_equality(self):
        assert DataSpace.unit(2, 16) == DataSpace.unit(2, 16)
        assert DataSpace.unit(2, 16) != DataSpace.unit(2, 8)
        assert DataSpace.unit(2, 16) != DataSpace.unit(3, 16)

    def test_immutable(self):
        s = DataSpace.unit(1)
        with pytest.raises(AttributeError):
            s.ndim = 5


class TestGrid:
    def test_origin_maps_to_zero(self):
        s = DataSpace.unit(2, resolution=8)
        assert s.grid((0.0, 0.0)) == (0, 0)

    def test_high_edge_clamps_to_last_cell(self):
        s = DataSpace.unit(1, resolution=8)
        assert s.grid((1.0,)) == (255,)

    def test_midpoint(self):
        s = DataSpace.unit(1, resolution=8)
        assert s.grid((0.5,)) == (128,)

    def test_scaled_bounds(self):
        s = DataSpace([(-1.0, 1.0)], resolution=8)
        assert s.grid((0.0,)) == (128,)

    def test_out_of_space(self):
        s = DataSpace.unit(1)
        with pytest.raises(OutOfSpaceError):
            s.grid((1.5,))
        with pytest.raises(OutOfSpaceError):
            s.grid((-0.1,))

    def test_dim_mismatch(self):
        s = DataSpace.unit(2)
        with pytest.raises(DimensionMismatchError):
            s.grid((0.5,))


class TestPointPath:
    def test_interleaving_cycles_dimensions(self):
        # resolution 2, 2-d: path bits are x1 y1 x0 y0 (MSB-first per dim).
        s = DataSpace.unit(2, resolution=2)
        # point (0.75, 0.25) -> grid (3, 1) = (0b11, 0b01)
        path = s.point_path((0.75, 0.25))
        # bits in order: x MSB (1), y MSB (0), x LSB (1), y LSB (1)
        assert path == 0b1011

    def test_first_bit_is_first_dimension_msb(self):
        s = DataSpace.unit(2, resolution=4)
        high_x = s.point_path((0.9, 0.1))
        assert (high_x >> (s.path_bits - 1)) & 1 == 1
        low_x = s.point_path((0.1, 0.9))
        assert (low_x >> (s.path_bits - 1)) & 1 == 0

    def test_point_key_prefix_of_path(self):
        s = DataSpace.unit(3, resolution=8)
        p = (0.3, 0.6, 0.9)
        path = s.point_path(p)
        for depth in (0, 1, 5, s.path_bits):
            k = s.point_key(p, depth)
            assert k.nbits == depth
            assert k.contains_path(path, s.path_bits)

    def test_point_key_depth_bounds(self):
        s = DataSpace.unit(1, resolution=4)
        with pytest.raises(GeometryError):
            s.point_key((0.5,), 5)

    def test_grid_path_dim_mismatch(self):
        s = DataSpace.unit(2, resolution=4)
        with pytest.raises(DimensionMismatchError):
            s.grid_path((1,))


class TestKeyRect:
    def test_root_key_is_whole_space(self):
        s = DataSpace([(0.0, 4.0), (-2.0, 2.0)], resolution=8)
        assert s.key_rect(ROOT_KEY) == s.whole_rect()

    def test_first_halving_cuts_first_dimension(self):
        s = DataSpace.unit(2, resolution=8)
        left = s.key_rect(RegionKey.from_bits("0"))
        right = s.key_rect(RegionKey.from_bits("1"))
        assert left == Rect((0.0, 0.0), (0.5, 1.0))
        assert right == Rect((0.5, 0.0), (1.0, 1.0))

    def test_second_halving_cuts_second_dimension(self):
        s = DataSpace.unit(2, resolution=8)
        assert s.key_rect(RegionKey.from_bits("01")) == Rect(
            (0.0, 0.5), (0.5, 1.0)
        )

    def test_children_tile_parent(self):
        s = DataSpace.unit(3, resolution=8)
        parent = RegionKey.from_bits("0101")
        r = s.key_rect(parent)
        r0 = s.key_rect(parent.child(0))
        r1 = s.key_rect(parent.child(1))
        assert not r0.intersects(r1)
        assert r.contains_rect(r0) and r.contains_rect(r1)
        assert r0.volume() + r1.volume() == pytest.approx(r.volume())

    def test_key_too_deep(self):
        s = DataSpace.unit(1, resolution=2)
        with pytest.raises(GeometryError):
            s.key_rect(RegionKey.from_bits("000"))

    def test_point_key_block_contains_point(self):
        s = DataSpace.unit(2, resolution=10)
        p = (0.123, 0.456)
        for depth in (1, 4, 9):
            assert s.key_rect(s.point_key(p, depth)).contains_point(p)

    def test_repr(self):
        assert "resolution=16" in repr(DataSpace.unit(2, 16))


class TestGridPathFastInterleave:
    """The 2-d Morton fast path must match the generic interleave exactly."""

    @staticmethod
    def generic_interleave(grid, resolution):
        path = 0
        for level in range(resolution - 1, -1, -1):
            for g in grid:
                path = (path << 1) | ((g >> level) & 1)
        return path

    def test_matches_generic_loop_across_resolutions(self):
        rng = random.Random(55)
        for resolution in (1, 3, 8, 16, 20, 32, 64):
            space = DataSpace.unit(2, resolution=resolution)
            for _ in range(200):
                grid = (rng.getrandbits(resolution), rng.getrandbits(resolution))
                assert space.grid_path(grid) == self.generic_interleave(
                    grid, resolution
                )

    def test_three_dimensions_use_generic_path(self):
        space = DataSpace.unit(3, resolution=8)
        grid = (0b10110001, 0b01011100, 0b11100010)
        assert space.grid_path(grid) == self.generic_interleave(grid, 8)

    def test_extremes(self):
        space = DataSpace.unit(2, resolution=16)
        full = (1 << 16) - 1
        assert space.grid_path((0, 0)) == 0
        assert space.grid_path((full, full)) == (1 << 32) - 1
        # dim 0 occupies the more significant bit of each pair
        assert space.grid_path((full, 0)) == int("10" * 16, 2)
        assert space.grid_path((0, full)) == int("01" * 16, 2)


class TestDecodeRect:
    def test_decode_rect_matches_key_rect(self):
        rng = random.Random(66)
        space = DataSpace.unit(2, resolution=12)
        for _ in range(100):
            nbits = rng.randrange(0, space.path_bits + 1)
            key = RegionKey(nbits, rng.getrandbits(nbits) if nbits else 0)
            assert space.decode_rect(key) == space.key_rect(key)
        # key_rect memoises, decode_rect never does
        key = RegionKey(4, 0b1010)
        assert space.key_rect(key) is space.key_rect(key)
        assert space.decode_rect(key) is not space.decode_rect(key)

    def test_decode_rect_rejects_deep_keys(self):
        space = DataSpace.unit(1, resolution=2)
        with pytest.raises(GeometryError):
            space.decode_rect(RegionKey.from_bits("000"))
