"""Unit tests for binary-partition region keys."""

import pytest

from repro.errors import GeometryError
from repro.geometry.region import ROOT_KEY, RegionKey


def key(bits: str) -> RegionKey:
    return RegionKey.from_bits(bits)


class TestConstruction:
    def test_root(self):
        assert ROOT_KEY.nbits == 0
        assert ROOT_KEY.value == 0
        assert ROOT_KEY.bit_string() == ""

    def test_from_bits(self):
        k = key("0110")
        assert k.nbits == 4
        assert k.value == 0b0110
        assert k.bit_string() == "0110"

    def test_leading_zeros_preserved(self):
        assert key("0001").bit_string() == "0001"

    def test_rejects_bad_bits(self):
        with pytest.raises(GeometryError):
            RegionKey.from_bits("012")

    def test_rejects_negative_length(self):
        with pytest.raises(GeometryError):
            RegionKey(-1, 0)

    def test_rejects_overflowing_value(self):
        with pytest.raises(GeometryError):
            RegionKey(2, 0b111)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            key("01").nbits = 5


class TestPrefixAlgebra:
    def test_root_is_prefix_of_everything(self):
        assert ROOT_KEY.is_prefix_of(key("0"))
        assert ROOT_KEY.is_prefix_of(key("101010"))
        assert ROOT_KEY.is_prefix_of(ROOT_KEY)

    def test_proper_prefix(self):
        assert key("01").is_prefix_of(key("0110"))
        assert not key("01").is_prefix_of(key("0010"))

    def test_self_prefix(self):
        assert key("0110").is_prefix_of(key("0110"))

    def test_longer_never_prefix_of_shorter(self):
        assert not key("0110").is_prefix_of(key("011"))

    def test_encloses_is_strict(self):
        assert key("01").encloses(key("011"))
        assert not key("01").encloses(key("01"))
        assert not key("01").encloses(key("1"))

    def test_disjoint(self):
        assert key("00").disjoint(key("01"))
        assert not key("0").disjoint(key("01"))
        assert not key("01").disjoint(key("0"))
        assert not ROOT_KEY.disjoint(key("1"))

    def test_nested_or_disjoint_trichotomy(self):
        # Any two keys are prefix-related or disjoint — the property that
        # guarantees partition boundaries never intersect.
        keys = [key(b) for b in ("", "0", "1", "00", "01", "0101", "11")]
        for a in keys:
            for b in keys:
                relations = [
                    a.is_prefix_of(b),
                    b.is_prefix_of(a),
                    a.disjoint(b),
                ]
                assert any(relations)

    def test_common_prefix(self):
        assert key("0110").common_prefix(key("0101")) == key("01")
        assert key("0110").common_prefix(key("0110")) == key("0110")
        assert key("0110").common_prefix(key("1")) == ROOT_KEY
        assert key("01").common_prefix(key("0110")) == key("01")


class TestPathContainment:
    def test_contains_matching_path(self):
        # path 0b0110... of 8 bits
        assert key("011").contains_path(0b01101111, 8)

    def test_rejects_non_matching_path(self):
        assert not key("111").contains_path(0b01101111, 8)

    def test_root_contains_all(self):
        assert ROOT_KEY.contains_path(0b1010, 4)

    def test_path_shorter_than_key_raises(self):
        with pytest.raises(GeometryError):
            key("0101").contains_path(0b01, 2)


class TestNavigation:
    def test_children(self):
        assert key("01").child(0) == key("010")
        assert key("01").child(1) == key("011")

    def test_child_rejects_bad_bit(self):
        with pytest.raises(GeometryError):
            key("01").child(2)

    def test_parent(self):
        assert key("010").parent() == key("01")
        with pytest.raises(GeometryError):
            ROOT_KEY.parent()

    def test_sibling(self):
        assert key("010").sibling() == key("011")
        assert key("011").sibling() == key("010")
        with pytest.raises(GeometryError):
            ROOT_KEY.sibling()

    def test_bit_access(self):
        k = key("0110")
        assert [k.bit(i) for i in range(4)] == [0, 1, 1, 0]
        assert list(k.bits()) == [0, 1, 1, 0]
        with pytest.raises(GeometryError):
            k.bit(4)

    def test_prefix(self):
        assert key("0110").prefix(2) == key("01")
        assert key("0110").prefix(0) == ROOT_KEY
        assert key("0110").prefix(4) == key("0110")
        with pytest.raises(GeometryError):
            key("01").prefix(3)

    def test_extended_by_path(self):
        base = key("01")
        path, bits = 0b0110, 4
        assert base.extended_by(path, bits, 1) == key("011")
        assert base.extended_by(path, bits, 2) == key("0110")
        with pytest.raises(GeometryError):
            base.extended_by(path, bits, 3)

    def test_split_dimension_cycles(self):
        assert key("").split_dimension(2) == 0
        assert key("0").split_dimension(2) == 1
        assert key("00").split_dimension(2) == 0
        assert key("000").split_dimension(3) == 0


class TestOrderingAndDunder:
    def test_equality_and_hash(self):
        assert key("01") == key("01")
        assert key("01") != key("010")
        assert hash(key("01")) == hash(key("01"))
        assert key("01") != "01"

    def test_lexicographic_order(self):
        assert key("0") < key("1")
        assert key("01") < key("0110")  # prefix sorts first
        assert key("00") < key("01")
        assert not key("1") < key("0")

    def test_sorting_groups_prefixes(self):
        keys = [key(b) for b in ("1", "0", "01", "00", "011")]
        ordered = [k.bit_string() for k in sorted(keys)]
        assert ordered == ["0", "00", "01", "011", "1"]

    def test_len(self):
        assert len(key("0110")) == 4
        assert len(ROOT_KEY) == 0

    def test_repr(self):
        assert "0110" in repr(key("0110"))
        assert "ε" in repr(ROOT_KEY)
