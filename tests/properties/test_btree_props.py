"""Property-based tests for the B+-tree baseline against a sorted model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyNotFoundError
from repro.baselines.btree import BPlusTree

KEY = st.integers(min_value=-(10**6), max_value=10**6)


@st.composite
def op_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=150))
    return [
        (draw(st.sampled_from(["insert", "insert", "delete"])), draw(KEY))
        for _ in range(n)
    ]


class TestAgainstModel:
    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        tree = BPlusTree(leaf_capacity=4, fanout=4)
        model: dict[int, int] = {}
        for i, (kind, k) in enumerate(ops):
            if kind == "insert":
                tree.insert(k, i, replace=True)
                model[k] = i
            elif k in model:
                assert tree.delete(k) == model.pop(k)
            else:
                with pytest.raises(KeyNotFoundError):
                    tree.delete(k)
        tree.check()
        assert [k for k, _ in tree.items()] == sorted(model)
        for k, v in model.items():
            assert tree.get(k) == v

    @given(st.lists(KEY, unique=True, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_range_scan_equals_filter(self, keys):
        tree = BPlusTree(leaf_capacity=4, fanout=4)
        for k in keys:
            tree.insert(k, k)
        lo, hi = -1000, 1000
        records, _ = tree.range_scan(lo, hi)
        assert [k for k, _ in records] == sorted(k for k in keys if lo <= k < hi)

    @given(st.lists(KEY, unique=True, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_after_bulk_load(self, keys):
        tree = BPlusTree(leaf_capacity=6, fanout=6)
        for k in keys:
            tree.insert(k, None)
        leaves, _ = tree.node_occupancies()
        if len(leaves) > 1:
            assert min(leaves) >= 3
