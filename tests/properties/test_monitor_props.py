"""Property test: the monitor's incremental state is exact, always.

One law over randomised workloads: after ANY mix of inserts, deletes
and bulk loads — interleaved in any order, at any small capacity — the
guarantee monitor's O(1)-per-event bookkeeping must agree with a fresh
full-sweep ``tree_stats()`` on every tracked quantity.  This is the
acceptance property for the doctor: health verdicts are computed from
the incremental gauges, so the gauges being exact is what makes the
verdicts trustworthy without an O(n) walk per check.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.checker import check_tree
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.obs import GuaranteeMonitor, evaluate

COORD = st.integers(min_value=0, max_value=(1 << 10) - 1)
POINT = st.tuples(COORD, COORD)

#: One workload step: insert / delete one point, or bulk-load a batch.
STEP = st.one_of(
    st.tuples(st.just("insert"), POINT),
    st.tuples(st.just("delete"), POINT),
    st.tuples(
        st.just("bulk"),
        st.lists(POINT, min_size=1, max_size=40, unique=True),
    ),
)


def to_point(cell):
    return (cell[0] / 1024, cell[1] / 1024)


class TestIncrementalStateIsExact:
    @given(
        steps=st.lists(STEP, min_size=1, max_size=60),
        capacity=st.sampled_from([4, 6, 8]),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_audit_clean_after_random_insert_delete_bulk_mix(
        self, steps, capacity
    ):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=capacity, fanout=capacity)
        live: set = set()
        with GuaranteeMonitor(tree) as monitor:
            for step in steps:
                kind, payload = step
                if kind == "insert":
                    tree.insert(to_point(payload), 0, replace=True)
                    live.add(payload)
                elif kind == "delete":
                    # Prefer a point that exists so deletes do real work;
                    # fall back to the raw payload (a no-op delete).
                    target = payload if payload in live else (
                        next(iter(live)) if live else None
                    )
                    if target is not None:
                        tree.delete(to_point(target))
                        live.discard(target)
                else:  # bulk (bulk_load needs an empty tree)
                    batch = [
                        (to_point(cell), i)
                        for i, cell in enumerate(payload)
                    ]
                    if tree.count == 0:
                        tree.bulk_load(batch, replace=True)
                        live = set(payload)
                    else:
                        tree.update_many(batch, replace=True)
                        live.update(payload)
            report = monitor.audit()
            assert report.clean, report.drift
            # The verdicts computed from the (audited-exact) gauges must
            # match the checker: a tree built by real operations either
            # satisfies invariant 6 or recorded a deferred escape, and
            # evaluate() mirrors exactly that rule.
            health = evaluate(monitor)
            check_tree(tree, check_occupancy=True)
            assert health.verdicts["occupancy"] in ("ok", "warning")
            assert health.verdicts["no_cascade"] == "ok"

    @given(data=st.data())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_audit_clean_when_attached_mid_history(self, data):
        """Seeding from live pages then tapping stays exact too."""
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4)
        before = data.draw(
            st.lists(POINT, min_size=1, max_size=80, unique=True)
        )
        after = data.draw(
            st.lists(POINT, min_size=1, max_size=80, unique=True)
        )
        for i, cell in enumerate(before):
            tree.insert(to_point(cell), i, replace=True)
        with GuaranteeMonitor(tree) as monitor:
            assert monitor.audit().clean
            for i, cell in enumerate(after):
                tree.insert(to_point(cell), i, replace=True)
            for cell in before:
                tree.delete(to_point(cell))
            report = monitor.audit()
            assert report.clean, report.drift
