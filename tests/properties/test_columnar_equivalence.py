"""Differential property tests: columnar layout vs the object oracle.

Hypothesis drives the *same* random operation sequence against two
BV-trees that differ only in page layout — one on a plain
:class:`PageStore` (object pages), one on a :class:`ColumnarStore`
(packed array columns).  The object tree is the oracle: for every
operation the columnar tree must return identical answers, and at the
end of the sequence the structural counters (``OpCounters``) and
page-level I/O counters (``IOStats``) must match exactly — the columnar
layout is a representation change, not an algorithm change, so the two
trees must make the same splits, promotions and page accesses in the
same order.

This is the equivalence contract :mod:`repro.core.columnar` advertises
in its module docstring.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

import pytest

from repro.core.tree import BVTree
from repro.errors import KeyNotFoundError
from repro.geometry.space import DataSpace
from repro.storage.pager import ColumnarStore, PageStore

#: Low resolution so random points collide, split and merge aggressively.
RESOLUTION = 8
COORD = st.integers(min_value=0, max_value=(1 << RESOLUTION) - 1)
CELL = st.tuples(COORD, COORD)


def to_point(cell: tuple[int, int]) -> tuple[float, float]:
    scale = 1 << RESOLUTION
    return (cell[0] / scale, cell[1] / scale)


def make_pair() -> tuple[BVTree, BVTree]:
    """An object-layout tree and a columnar tree, same geometry."""
    space = DataSpace.unit(2, resolution=RESOLUTION)
    obj = BVTree(space, data_capacity=4, fanout=4, store=PageStore())
    col = BVTree(space, data_capacity=4, fanout=4, store=ColumnarStore())
    assert obj.layout == "object" and col.layout == "columnar"
    return obj, col


def assert_counters_match(obj: BVTree, col: BVTree) -> None:
    """Structural and I/O counters must be bit-identical across layouts."""
    assert obj.stats.to_dict() == col.stats.to_dict()
    assert obj.store.stats.snapshot() == col.store.stats.snapshot()


def assert_same_structure(obj: BVTree, col: BVTree) -> None:
    assert len(obj) == len(col)
    assert obj.height == col.height
    obj.check(check_owners=True, check_occupancy=False)
    col.check(check_owners=True, check_occupancy=False)


@st.composite
def op_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=100))
    ops = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                [
                    "insert",
                    "insert",
                    "insert",
                    "delete",
                    "get",
                    "range",
                    "knn",
                ]
            )
        )
        if kind == "range":
            ops.append((kind, draw(CELL), draw(CELL)))
        elif kind == "knn":
            ops.append((kind, draw(CELL), draw(st.integers(1, 5))))
        else:
            ops.append((kind, draw(CELL)))
    return ops


def apply_lockstep(obj: BVTree, col: BVTree, op) -> None:
    """Run one operation on both trees and assert identical answers."""
    kind = op[0]
    if kind == "insert":
        point = to_point(op[1])
        value = op[1]
        obj.insert(point, value, replace=True)
        col.insert(point, value, replace=True)
    elif kind == "delete":
        point = to_point(op[1])
        try:
            expected = obj.delete(point)
        except KeyNotFoundError:
            with pytest.raises(KeyNotFoundError):
                col.delete(point)
        else:
            assert col.delete(point) == expected
    elif kind == "get":
        point = to_point(op[1])
        try:
            expected = obj.get(point)
        except KeyNotFoundError:
            with pytest.raises(KeyNotFoundError):
                col.get(point)
        else:
            assert col.get(point) == expected
    elif kind == "range":
        a, b = to_point(op[1]), to_point(op[2])
        cell = 1.0 / (1 << RESOLUTION)
        lows = [min(x, y) for x, y in zip(a, b)]
        # One cell past the max corner, so the half-open box is never
        # empty and always covers the corner points themselves.
        highs = [max(x, y) + cell for x, y in zip(a, b)]
        ro = obj.range_query(lows, highs)
        rc = col.range_query(lows, highs)
        assert sorted(ro.records) == sorted(rc.records)
        assert ro.pages_visited == rc.pages_visited
        assert ro.data_pages_visited == rc.data_pages_visited
    elif kind == "knn":
        point, k = to_point(op[1]), op[2]
        ko = obj.nearest(point, k=k)
        kc = col.nearest(point, k=k)
        # Equal-distance neighbours may tie-break differently; the
        # sorted distance multiset and the page-access count may not.
        assert [n.distance for n in ko.neighbours] == [
            n.distance for n in kc.neighbours
        ]
        assert ko.pages_visited == kc.pages_visited
    else:  # pragma: no cover - strategy is closed over these kinds
        raise AssertionError(kind)


class TestLockstepEquivalence:
    @given(op_sequences())
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_op_mix(self, ops):
        obj, col = make_pair()
        for op in ops:
            apply_lockstep(obj, col, op)
        assert_counters_match(obj, col)
        assert_same_structure(obj, col)

    @given(
        st.lists(CELL, min_size=1, max_size=120, unique=True),
        st.lists(CELL, min_size=0, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_then_updates(self, cells, extra):
        obj, col = make_pair()
        records = [(to_point(c), i) for i, c in enumerate(cells)]
        obj.bulk_load(records)
        col.bulk_load(records)
        assert_counters_match(obj, col)
        assert_same_structure(obj, col)
        for j, cell in enumerate(extra):
            apply_lockstep(obj, col, ("insert", cell))
            if j % 3 == 0:
                apply_lockstep(obj, col, ("delete", cell))
        assert_counters_match(obj, col)
        assert_same_structure(obj, col)
        for point, value in records:
            if point in [to_point(c) for c in extra]:
                continue
            assert col.get(point) == obj.get(point)

    @given(st.lists(CELL, min_size=5, max_size=80, unique=True), CELL, CELL)
    @settings(max_examples=40, deadline=None)
    def test_full_and_partial_scans_agree(self, cells, a, b):
        obj, col = make_pair()
        for i, cell in enumerate(cells):
            point = to_point(cell)
            obj.insert(point, i)
            col.insert(point, i)
        whole = obj.space.whole_rect()
        ro = obj.range_query(whole.lows, whole.highs)
        rc = col.range_query(whole.lows, whole.highs)
        assert sorted(ro.records) == sorted(rc.records)
        assert len(rc.records) == len(cells)
        apply_lockstep(obj, col, ("range", a, b))
        apply_lockstep(obj, col, ("knn", a, min(5, len(cells))))
        assert_counters_match(obj, col)
