"""Property tests for the time-series sink's stride-doubling compaction.

Three laws over randomised workload lengths and sink configurations:

- the retained sample count never exceeds ``max_samples``, however long
  the drive;
- the newest sample is always retained and samples stay strictly
  increasing in op count — compaction halves resolution, never recency
  or order;
- every retained op count is a multiple of the *original* stride, and
  the final stride is the original times a power of two — compaction
  only ever merges adjacent strides, it cannot invent sample points.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry, TimeSeriesSink


def drive(every: int, max_samples: int, ops: int) -> TimeSeriesSink:
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    sink = TimeSeriesSink(
        registry, every=every, max_samples=max_samples
    )
    for _ in range(ops):
        counter.inc()
        sink.tick()
    return sink


@given(
    every=st.integers(min_value=1, max_value=7),
    max_samples=st.integers(min_value=2, max_value=16),
    ops=st.integers(min_value=0, max_value=2000),
)
@settings(max_examples=120, deadline=None)
def test_sample_count_stays_bounded(every, max_samples, ops):
    sink = drive(every, max_samples, ops)
    assert len(sink.ops) <= max_samples
    for column in sink.columns.values():
        assert len(column) == len(sink.ops)


@given(
    every=st.integers(min_value=1, max_value=7),
    max_samples=st.integers(min_value=2, max_value=16),
    ops=st.integers(min_value=1, max_value=2000),
)
@settings(max_examples=120, deadline=None)
def test_newest_sample_retained_and_order_preserved(
    every, max_samples, ops
):
    sink = drive(every, max_samples, ops)
    if ops < every:
        assert sink.ops == []
        return
    # nothing sample-worthy was missed at the final stride: fewer than
    # one (possibly doubled) stride's worth of ops elapsed since the
    # newest retained sample
    assert ops - sink.ops[-1] < sink.every
    # without compaction the newest sample sits exactly on the grid
    if sink.every == every:
        assert sink.ops[-1] == (ops // every) * every
    assert sink.ops == sorted(sink.ops)
    assert len(set(sink.ops)) == len(sink.ops)


@given(
    every=st.integers(min_value=1, max_value=7),
    max_samples=st.integers(min_value=2, max_value=16),
    ops=st.integers(min_value=0, max_value=2000),
)
@settings(max_examples=120, deadline=None)
def test_strides_are_power_of_two_multiples(every, max_samples, ops):
    sink = drive(every, max_samples, ops)
    # final stride = original * 2^k for some k >= 0
    ratio = sink.every // every
    assert sink.every == every * ratio
    assert ratio & (ratio - 1) == 0
    # every retained sample point lies on the original stride grid
    for op_count in sink.ops:
        assert op_count % every == 0
    # counter column tracks the op counts exactly (the sampled counter
    # equals the ops driven at sample time, surviving compaction)
    assert sink.columns.get("ops", []) == sink.ops


@given(
    max_samples=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_compaction_preserves_time_range_at_half_resolution(max_samples):
    """One compaction keeps alternating samples, newest included."""
    every = 1
    ops = max_samples + 1  # exactly one compaction triggers
    sink = drive(every, max_samples, ops)
    expected = list(range(ops, 0, -2))[::-1]
    assert sink.ops == expected
    assert sink.every == 2
