"""Property-based tests for the balanced binary split guarantee."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.split import choose_split, split_candidates
from repro.geometry.region import ROOT_KEY

PATH_BITS = 24


@st.composite
def path_populations(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    paths = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << PATH_BITS) - 1),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return [(p, PATH_BITS) for p in paths]


class TestBalanceGuarantee:
    @given(path_populations())
    @settings(max_examples=200)
    def test_both_sides_nonempty(self, items):
        best = choose_split(ROOT_KEY, items)
        inside = sum(1 for p, b in items if best.contains_path(p, b))
        assert 1 <= inside <= len(items) - 1

    @given(path_populations())
    @settings(max_examples=200)
    def test_one_third_guarantee(self, items):
        # The [LS89] bound the paper's occupancy guarantee rests on.
        best = choose_split(ROOT_KEY, items)
        inside = sum(1 for p, b in items if best.contains_path(p, b))
        outside = len(items) - inside
        floor = max(1, len(items) // 3 - 1)
        assert min(inside, outside) >= floor

    @given(path_populations())
    @settings(max_examples=100)
    def test_split_key_nonempty_and_partitions(self, items):
        best = choose_split(ROOT_KEY, items)
        assert best.nbits >= 1
        inner = [p for p, b in items if best.contains_path(p, b)]
        outer = [p for p, b in items if not best.contains_path(p, b)]
        assert len(inner) + len(outer) == len(items)

    @given(path_populations())
    @settings(max_examples=100)
    def test_candidates_all_proper(self, items):
        for block, n in split_candidates(ROOT_KEY, items):
            assert 0 < n < len(items)
            assert block.nbits >= 1
