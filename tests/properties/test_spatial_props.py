"""Property-based tests for the spatial index and Z-interval decomposition."""

from hypothesis import given, settings, strategies as st

from repro.core.spatial import SpatialIndex
from repro.baselines.zbtree import ZOrderBTree
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace

COORD = st.floats(min_value=0.0, max_value=0.9375, allow_nan=False, width=32)
SIDE = st.floats(min_value=0.000244140625, max_value=0.03125, allow_nan=False, width=32)


@st.composite
def rects(draw):
    x, y = draw(COORD), draw(COORD)
    w, h = draw(SIDE), draw(SIDE)
    return Rect((x, y), (min(x + w, 0.999), min(y + h, 0.999)))


class TestSpatialIndexProperties:
    @given(st.lists(rects(), min_size=1, max_size=60), rects())
    @settings(max_examples=60, deadline=None)
    def test_intersection_matches_brute_force(self, objects, query):
        space = DataSpace.unit(2, resolution=16)
        index = SpatialIndex(space)
        for i, rect in enumerate(objects):
            index.insert(rect, i)
        got = {v for _, v in index.intersecting(query)}
        expected = {i for i, r in enumerate(objects) if r.intersects(query)}
        assert got == expected

    @given(st.lists(rects(), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_enclosing_block_contains_object(self, objects):
        space = DataSpace.unit(2, resolution=16)
        index = SpatialIndex(space)
        for rect in objects:
            block = index.enclosing_block(rect)
            assert space.key_rect(block).contains_rect(rect)

    @given(st.lists(rects(), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_insert_delete_returns_to_empty(self, objects):
        space = DataSpace.unit(2, resolution=16)
        index = SpatialIndex(space)
        for i, rect in enumerate(objects):
            index.insert(rect, i)
        for i, rect in enumerate(objects):
            index.delete(rect, i)
        assert len(index) == 0
        assert not index._buckets
        assert not index._weights


class TestZIntervalProperties:
    @given(rects())
    @settings(max_examples=80, deadline=None)
    def test_intervals_cover_the_box(self, query):
        space = DataSpace.unit(2, resolution=12)
        zb = ZOrderBTree(space, max_intervals=32)
        intervals = zb.z_intervals(query)
        # Every grid cell inside the box must fall in some interval.
        import random

        rng = random.Random(4)
        for _ in range(30):
            p = (
                rng.uniform(query.lows[0], query.highs[0] - 1e-9),
                rng.uniform(query.lows[1], query.highs[1] - 1e-9),
            )
            code = space.point_path(p)
            assert any(lo <= code <= hi for lo, hi in intervals)

    @given(rects())
    @settings(max_examples=80, deadline=None)
    def test_intervals_sorted_disjoint(self, query):
        space = DataSpace.unit(2, resolution=12)
        zb = ZOrderBTree(space, max_intervals=32)
        intervals = zb.z_intervals(query)
        assert intervals == sorted(intervals)
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert a1 < b0
        for lo, hi in intervals:
            assert lo <= hi
