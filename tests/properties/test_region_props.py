"""Property-based tests for region keys (the geometric foundation)."""

from hypothesis import given, strategies as st

from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace


@st.composite
def region_keys(draw, max_bits: int = 24):
    nbits = draw(st.integers(min_value=0, max_value=max_bits))
    value = draw(st.integers(min_value=0, max_value=(1 << nbits) - 1))
    return RegionKey(nbits, value)


@st.composite
def key_pairs(draw):
    return draw(region_keys()), draw(region_keys())


class TestPrefixAlgebra:
    @given(key_pairs())
    def test_nested_or_disjoint(self, pair):
        # The heart of "partition boundaries never intersect".
        a, b = pair
        assert a.is_prefix_of(b) or b.is_prefix_of(a) or a.disjoint(b)

    @given(region_keys())
    def test_root_prefixes_everything(self, k):
        assert ROOT_KEY.is_prefix_of(k)

    @given(region_keys())
    def test_self_prefix_reflexive(self, k):
        assert k.is_prefix_of(k)
        assert not k.encloses(k)
        assert not k.disjoint(k)

    @given(key_pairs())
    def test_prefix_antisymmetry(self, pair):
        a, b = pair
        if a.is_prefix_of(b) and b.is_prefix_of(a):
            assert a == b

    @given(key_pairs())
    def test_common_prefix_is_shared_prefix(self, pair):
        a, b = pair
        c = a.common_prefix(b)
        assert c.is_prefix_of(a) and c.is_prefix_of(b)
        # and it is the longest such: extending by either next bit fails
        if c.nbits < min(a.nbits, b.nbits):
            assert a.bit(c.nbits) != b.bit(c.nbits)

    @given(region_keys(max_bits=23))
    def test_children_partition_parent(self, k):
        c0, c1 = k.child(0), k.child(1)
        assert k.encloses(c0) and k.encloses(c1)
        assert c0.disjoint(c1)
        assert c0.sibling() == c1
        assert c0.parent() == k

    @given(key_pairs())
    def test_order_consistent_with_prefix(self, pair):
        a, b = pair
        if a.encloses(b):
            assert a < b  # a prefix sorts before its extensions

    @given(st.lists(region_keys(), min_size=1, max_size=30))
    def test_sort_is_total_and_stable(self, keys):
        ordered = sorted(keys)
        assert sorted(ordered) == ordered
        assert len(ordered) == len(keys)


class TestPathContainment:
    @given(region_keys(max_bits=16), st.integers(min_value=0))
    def test_key_contains_its_extensions(self, k, extra_bits):
        extra = extra_bits % (1 << 8)
        path = (k.value << 8) | extra
        assert k.contains_path(path, k.nbits + 8)

    @given(key_pairs())
    def test_block_geometry_matches_prefix_relation(self, pair):
        a, b = pair
        space = DataSpace.unit(2, resolution=12)
        if a.nbits > space.path_bits or b.nbits > space.path_bits:
            return
        ra, rb = space.key_rect(a), space.key_rect(b)
        if a.is_prefix_of(b):
            assert ra.contains_rect(rb)
        elif b.is_prefix_of(a):
            assert rb.contains_rect(ra)
        else:
            assert not ra.intersects(rb)
