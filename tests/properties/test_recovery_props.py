"""Property tests of crash recovery.

Two claims, each over arbitrary seeds and arbitrary byte-level damage:

1. **Prefix consistency.**  Truncating the WAL at *any* byte offset —
   record boundary or mid-record — recovers a tree equal to replaying
   some exact prefix of the committed operations.  No partial operation
   is ever visible, whatever the cut.
2. **Idempotence.**  Recovering a recovered directory changes nothing.

The examples rebuild a small durable tree per case, so the suite keeps
the populations deliberately tiny.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.storage.durable.recovery import (
    create_durable_tree,
    open_durable_tree,
)
from repro.storage.durable.store import WAL_NAME
from repro.workloads import churn, uniform

NAMED_OPS = ("insert", "delete", "bulk_load")


def dedup(points, space):
    seen = set()
    out = []
    for point in points:
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            out.append(tuple(point))
    return out


def build_ops(seed, n_ops, delete_fraction):
    space = DataSpace.unit(2, resolution=12)
    points = dedup(uniform(n_ops, 2, seed=seed), space)
    ops = []
    for verb, point in churn(
        points, delete_fraction=delete_fraction, seed=seed
    ):
        ops.append((verb, point, len(ops)))
    return space, ops


def apply_op(tree, op):
    verb, point, value = op
    if verb == "insert":
        tree.insert(point, value, replace=True)
    else:
        tree.delete(point)


def replay(space, ops):
    tree = BVTree(space, data_capacity=4, fanout=4)
    for op in ops:
        apply_op(tree, op)
    return tree


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_ops=st.integers(4, 28),
    delete_fraction=st.floats(0.0, 0.45),
    cut=st.floats(0.0, 1.0),
)
def test_truncation_at_any_offset_recovers_a_prefix(
    seed, n_ops, delete_fraction, cut
):
    workdir = tempfile.mkdtemp(prefix="repro-recprop-")
    try:
        directory = os.path.join(workdir, "store")
        space, ops = build_ops(seed, n_ops, delete_fraction)
        tree = create_durable_tree(
            directory, space, data_capacity=4, fanout=4, sync="os"
        )
        # The tree metadata records are the first thing in the WAL;
        # cuts land anywhere *after* them (a cut inside the metadata
        # models a crash before the store was usable at all, which
        # recovery correctly refuses — not the property under test).
        tree.store._wal.flush()
        wal_path = os.path.join(directory, WAL_NAME)
        floor = os.path.getsize(wal_path)
        for op in ops:
            apply_op(tree, op)
        tree.store.close(checkpoint=False)

        size = os.path.getsize(wal_path)
        offset = floor + int(cut * (size - floor))
        with open(wal_path, "r+b") as fp:
            fp.truncate(offset)

        recovered, report = open_durable_tree(directory, sync="os")
        committed = [n for n in report.op_commits if n in NAMED_OPS]
        prefix = ops[: len(committed)]
        # Exact prefix: the names match op for op, and the recovered
        # state is the replay of exactly those operations.
        assert committed == [verb for verb, _, _ in prefix]
        expected = replay(space, prefix)
        assert recovered.count == expected.count
        assert sorted(recovered.items()) == sorted(expected.items())
        recovered.check(check_occupancy=False, check_justification=False)

        # Idempotence: recover the recovered directory.
        recovered.store.close(checkpoint=False)
        again, report2 = open_durable_tree(directory, sync="os")
        assert sorted(again.items()) == sorted(expected.items())
        assert report2.records_uncommitted == 0
        assert not report2.torn_tail
        again.store.close(checkpoint=False)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_ops=st.integers(4, 24),
    checkpoint_after=st.integers(0, 24),
)
def test_recovery_idempotent_across_checkpoints(
    seed, n_ops, checkpoint_after
):
    """Recover → close → recover again is a fixed point, with or
    without a mid-stream checkpoint."""
    workdir = tempfile.mkdtemp(prefix="repro-recprop-")
    try:
        directory = os.path.join(workdir, "store")
        space, ops = build_ops(seed, n_ops, 0.3)
        tree = create_durable_tree(
            directory, space, data_capacity=4, fanout=4, sync="os"
        )
        for index, op in enumerate(ops):
            if index == checkpoint_after:
                tree.store.checkpoint()
            apply_op(tree, op)
        tree.store.close(checkpoint=False)

        first, report1 = open_durable_tree(directory, sync="os")
        state1 = sorted(first.items())
        first.store.close(checkpoint=False)
        second, report2 = open_durable_tree(directory, sync="os")
        assert sorted(second.items()) == state1
        assert second.count == first.count
        assert report2.records_uncommitted == 0
        expected = replay(space, ops)
        assert state1 == sorted(expected.items())
        second.store.close(checkpoint=False)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
