"""Property tests for the observability layer.

Two laws, each over randomised inputs:

- EXPLAIN's ``pages_touched`` equals ``height + 1`` on every exact
  match — the paper's §6 page-access guarantee, now checked through the
  trace rather than through IOStats, on trees with and without guards;
- ``key_prune_dim`` is ``None`` exactly when ``key_intersects`` is true
  — the EXPLAIN pruning diagnostic and the hot-loop boolean are the
  same predicate, so the traced and untraced range paths can never
  disagree about what was pruned.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.tree import BVTree
from repro.geometry import Rect, key_intersects, key_prune_dim, query_cell_bounds
from repro.geometry.space import DataSpace

COORD = st.integers(min_value=0, max_value=(1 << 10) - 1)


def to_point(cell: tuple[int, int]) -> tuple[float, float]:
    return (cell[0] / 1024, cell[1] / 1024)


class TestExplainPageAccessLaw:
    @given(
        st.lists(
            st.tuples(COORD, COORD), min_size=1, max_size=150, unique=True
        )
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_pages_touched_is_height_plus_one(self, cells):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4)
        for i, cell in enumerate(cells):
            tree.insert(to_point(cell), i, replace=True)
        for cell in cells[:: max(1, len(cells) // 20)]:
            report = tree.explain(to_point(cell))
            assert report.result["found"] is True
            assert report.pages_touched == tree.height + 1
            assert len(report.steps) == tree.height

    def test_holds_with_and_without_guards(self):
        space = DataSpace.unit(2, resolution=10)
        guarded = BVTree(space, data_capacity=4, fanout=4)
        flat = BVTree(space, data_capacity=64, fanout=64)
        points = [
            ((i * 37 % 1024) / 1024, (i * 101 % 1024) / 1024)
            for i in range(500)
        ]
        for i, point in enumerate(points):
            guarded.insert(point, i, replace=True)
            flat.insert(point, i, replace=True)
        # The small-capacity tree must actually have guards for the
        # "with guards" half to mean anything; the large one must not.
        assert guarded.stats.demotions > 0
        assert flat.height <= 1
        guard_descents = 0
        for point in points[::23]:
            for tree in (guarded, flat):
                report = tree.explain(point)
                assert report.pages_touched == tree.height + 1
            guard_descents += sum(
                step["via"] == "guard"
                for step in guarded.explain(point).steps
            )
        assert guard_descents > 0


class TestPruneDimEquivalence:
    @given(
        nbits=st.integers(min_value=0, max_value=12),
        value_seed=st.integers(min_value=0, max_value=(1 << 12) - 1),
        box=st.tuples(COORD, COORD, COORD, COORD),
    )
    @settings(max_examples=300, deadline=None)
    def test_prune_dim_none_iff_intersects(self, nbits, value_seed, box):
        space = DataSpace.unit(2, resolution=6)
        value = value_seed & ((1 << nbits) - 1)
        x0, x1, y0, y1 = box
        rect = Rect(
            (min(x0, x1) / 1024, min(y0, y1) / 1024),
            (max(x0, x1) / 1024 + 1e-3, max(y0, y1) / 1024 + 1e-3),
        )
        bounds = query_cell_bounds(space, rect)
        args = (value, nbits, space.ndim, space.resolution, bounds)
        dim = key_prune_dim(*args)
        assert (dim is None) == key_intersects(*args)
        if dim is not None:
            assert 0 <= dim < space.ndim
