"""Property-based tests: the BV-tree against a model dict, invariants on.

Hypothesis drives random operation sequences against a plain-dict model;
after every sequence the full invariant checker runs (including the
single-descent owner property), and every surviving record must be
re-found through the public search path — which also re-verifies the
``height + 1`` page-access law on every lookup.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace

COORD = st.integers(min_value=0, max_value=(1 << 10) - 1)


def to_point(cell: tuple[int, int]) -> tuple[float, float]:
    return (cell[0] / 1024, cell[1] / 1024)


@st.composite
def operations(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["insert", "insert", "insert", "delete"]))
        cell = (draw(COORD), draw(COORD))
        ops.append((kind, cell))
    return ops


class TestAgainstModel:
    @given(operations())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_dict_model(self, ops):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4)
        model: dict[tuple[int, int], int] = {}
        for i, (kind, cell) in enumerate(ops):
            point = to_point(cell)
            if kind == "insert":
                tree.insert(point, i, replace=True)
                model[cell] = i
            elif cell in model:
                assert tree.delete(point) == model.pop(cell)
            else:
                from repro.errors import KeyNotFoundError
                import pytest

                with pytest.raises(KeyNotFoundError):
                    tree.delete(point)
        assert len(tree) == len(model)
        for cell, value in model.items():
            assert tree.get(to_point(cell)) == value
        tree.check(
            sample_points=len(model),
            check_owners=True,
            check_occupancy=False,
        )

    @given(st.lists(st.tuples(COORD, COORD), min_size=1, max_size=150, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_insert_only_occupancy_and_registry(self, cells):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=5)
        for i, cell in enumerate(cells):
            tree.insert(to_point(cell), i, replace=True)
        tree.check(
            sample_points=len(cells), check_owners=True, check_occupancy=True
        )

    @given(st.lists(st.tuples(COORD, COORD), min_size=5, max_size=80, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_range_query_equals_filter(self, cells):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4)
        for i, cell in enumerate(cells):
            tree.insert(to_point(cell), i, replace=True)
        lows, highs = (0.25, 0.25), (0.75, 0.75)
        got = set(tree.range_query(lows, highs).points())
        expected = {
            to_point(c)
            for c in cells
            if lows[0] <= to_point(c)[0] < highs[0]
            and lows[1] <= to_point(c)[1] < highs[1]
        }
        assert got == expected

    @given(st.lists(st.tuples(COORD, COORD), min_size=1, max_size=100, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_delete_everything_leaves_empty_tree(self, cells):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4)
        for i, cell in enumerate(cells):
            tree.insert(to_point(cell), i, replace=True)
        for cell in cells:
            tree.delete(to_point(cell))
        assert len(tree) == 0
        tree.check(check_occupancy=False)
