"""Property-based tests: snapshots round-trip arbitrary trees."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.storage.snapshot import dumps_tree, loads_tree

COORD = st.integers(min_value=0, max_value=(1 << 10) - 1)


def to_point(cell):
    return (cell[0] / 1024, cell[1] / 1024)


@st.composite
def op_sequences(draw):
    n = draw(st.integers(min_value=0, max_value=100))
    return [
        (
            draw(st.sampled_from(["insert", "insert", "delete"])),
            (draw(COORD), draw(COORD)),
        )
        for _ in range(n)
    ]


class TestSnapshotRoundTrip:
    @given(op_sequences())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_round_trip_after_arbitrary_ops(self, ops):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4)
        model = {}
        for i, (kind, cell) in enumerate(ops):
            point = to_point(cell)
            if kind == "insert":
                tree.insert(point, i, replace=True)
                model[cell] = i
            elif cell in model:
                tree.delete(point)
                del model[cell]
        clone = loads_tree(dumps_tree(tree))
        assert len(clone) == len(model)
        for cell, value in model.items():
            assert clone.get(to_point(cell)) == value
        # Structural equivalence, not just logical: same page populations.
        original = tree.tree_stats()
        restored = clone.tree_stats()
        assert restored.height == original.height
        assert sorted(restored.data_occupancies) == sorted(
            original.data_occupancies
        )
        assert restored.guards_by_level == original.guards_by_level
        # And the clone remains fully operational.
        clone.insert((0.9999, 0.9999), "post-load", replace=True)
        assert clone.contains((0.9999, 0.9999))
        clone.check(check_occupancy=False, check_justification=False)
