"""Property tests: profiler histograms agree with the tree's own counters.

The profiler observes operations from the outside — a tracer tap for
updates, inline marks for reads.  The tree counts the same operations
from the inside via ``OpCounters``.  Over randomised workloads and both
page layouts the two views must agree exactly:

- update op counts equal the ``OpCounters`` delta (inserts, deletes);
- the insert cascade histogram totals exactly the split counters'
  delta — every split the tree performed was attributed to some op,
  and none was invented;
- read op counts equal the number of calls the driver issued (the
  counters have no read-side fields, so the driver is the ground
  truth there).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.obs.profile import OpProfiler

COORD = st.integers(min_value=0, max_value=(1 << 10) - 1)
LAYOUTS = st.sampled_from(["object", "columnar"])


def to_point(cell: tuple[int, int]) -> tuple[float, float]:
    return (cell[0] / 1024, cell[1] / 1024)


class TestUpdateConsistency:
    @given(
        cells=st.lists(
            st.tuples(COORD, COORD), min_size=1, max_size=120, unique=True
        ),
        layout=LAYOUTS,
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_histogram_counts_match_opcounters(self, cells, layout):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4, layout=layout)
        profiler = OpProfiler(tree).attach()
        before = tree.stats.snapshot()
        for i, cell in enumerate(cells):
            tree.insert(to_point(cell), i, replace=True)
        deleted = cells[::3]
        for cell in deleted:
            tree.delete(to_point(cell))
        profiler.detach()
        delta = tree.stats.delta(before)

        insert = profiler.profiles["insert"]
        assert insert.ops == delta.inserts == len(cells)
        assert insert.cascade.total == (
            delta.data_splits + delta.index_splits
        )
        if deleted:
            assert profiler.profiles["delete"].ops == delta.deletes
            assert profiler.profiles["delete"].ops == len(deleted)


class TestReadConsistency:
    @given(
        cells=st.lists(
            st.tuples(COORD, COORD), min_size=4, max_size=100, unique=True
        ),
        layout=LAYOUTS,
        stride=st.integers(min_value=1, max_value=5),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_read_ops_match_driver_counts(self, cells, layout, stride):
        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4, layout=layout)
        tree.bulk_load(
            [(to_point(c), i) for i, c in enumerate(cells)], replace=True
        )
        profiler = OpProfiler(tree).attach()
        probes = cells[::stride]
        for cell in probes:
            tree.get(to_point(cell))
        n_ranges = 0
        for cell in probes[: max(1, len(probes) // 4)]:
            low = to_point(cell)
            tree.range_query(low, (min(1.0, low[0] + 0.2), min(1.0, low[1] + 0.2)))
            n_ranges += 1
        tree.nearest(to_point(cells[0]), k=min(3, len(cells)))
        profiler.flush()

        get = profiler.profile("get")
        assert get.ops == len(probes)
        assert get.errors.value == 0
        # every exact-match descent reads exactly height + 1 pages
        assert get.pages.total == len(probes) * (tree.height + 1)
        assert profiler.profile("range").ops == n_ranges
        assert profiler.profile("knn").ops == 1
        profiler.detach()
