"""Property: bulk loading is observationally equivalent to insertion.

Satellite of the bulk-loading PR: for any record set, the tree built by
``bulk_load`` and the tree built by repeated ``insert`` must answer
exact-match (both ``get`` and the registry-based ``get_fast``), range and
partial-match queries identically, and both must satisfy every structural
invariant including single-descent ownership.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace

COORD = st.floats(
    min_value=0.0, max_value=0.9375, allow_nan=False, width=32
)
POINTS = st.lists(
    st.tuples(COORD, COORD), min_size=1, max_size=120, unique=True
)


def build_pair(points):
    space = DataSpace.unit(2, resolution=12)
    records = [(p, i) for i, p in enumerate(points)]
    incremental = BVTree(space, data_capacity=4, fanout=4)
    for point, value in records:
        incremental.insert(point, value, replace=True)
    bulk = BVTree(space, data_capacity=4, fanout=4)
    bulk.bulk_load(records, replace=True)
    return incremental, bulk


class TestBulkEquivalence:
    @given(POINTS)
    @settings(max_examples=40, deadline=None)
    def test_both_pass_full_check(self, points):
        incremental, bulk = build_pair(points)
        incremental.check(check_owners=True)
        bulk.check(check_owners=True)
        assert bulk.count == incremental.count

    @given(POINTS)
    @settings(max_examples=40, deadline=None)
    def test_exact_match_equivalence(self, points):
        incremental, bulk = build_pair(points)
        for point in points:
            expected = incremental.get(point)
            assert bulk.get(point) == expected
            assert bulk.get_fast(point) == expected

    @given(POINTS, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_range_equivalence(self, points, seed):
        incremental, bulk = build_pair(points)
        rng = random.Random(seed)
        for _ in range(5):
            lows = tuple(rng.uniform(0.0, 0.8) for _ in range(2))
            highs = tuple(lo + rng.uniform(0.01, 0.4) for lo in lows)
            a = incremental.range_query(lows, highs)
            b = bulk.range_query(lows, highs)
            assert sorted(a.records) == sorted(b.records)

    @given(POINTS)
    @settings(max_examples=30, deadline=None)
    def test_partial_match_equivalence(self, points):
        incremental, bulk = build_pair(points)
        probe = points[0]
        for constraints in ({0: probe[0]}, {1: probe[1]}):
            a = incremental.partial_match(constraints)
            b = bulk.partial_match(constraints)
            assert sorted(a.records) == sorted(b.records)
