"""Constructive reproductions of the paper's dynamic figures.

Figure 2-1a…2-1d show a BV-tree being *built*: first data split, first
index split with a promotion, root growth with re-promotion.  Figure 4-1
shows a promoted data page splitting: the outer part keeps guarding, the
inner part is demoted.  These tests drive the real insertion code through
those transitions and assert the structural shape after each.
"""

import pytest

from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace


def key(bits: str) -> RegionKey:
    return RegionKey.from_bits(bits)


class TestFigure21Sequence:
    """The 2-1a → 2-1d construction narrative, on real inserts."""

    def test_2_1a_single_region(self):
        # "Initially, there is a single subspace or region, which is the
        # whole data space."
        tree = BVTree(DataSpace.unit(2, resolution=12), data_capacity=4, fanout=4)
        for i, x in enumerate((0.1, 0.3, 0.6, 0.9)):
            tree.insert((x, x), i)
        assert tree.height == 0
        assert isinstance(tree.store.read(tree.root_page), DataPage)

    def test_2_1b_first_split_creates_two_region_index(self):
        # "Figure 2-lb shows a data space after the first overflow and
        # split.  An index node has been created which contains two
        # entries ... each entry is labelled with its partition level."
        tree = BVTree(DataSpace.unit(2, resolution=12), data_capacity=4, fanout=4)
        for i in range(5):
            tree.insert((0.05 + 0.2 * i, 0.5), i)
        assert tree.height == 1
        root: IndexNode = tree.store.read(tree.root_page)
        assert root.index_level == 1
        assert root.native_count() == 2
        assert all(e.level == 0 for e in root.entries)
        # Enclosure representation: the outer keeps the whole-space key.
        keys = sorted(e.key for e in root.entries)
        assert keys[0].is_prefix_of(keys[1])

    def test_2_1c_index_split_promotes_the_enclosing_region(self):
        # Figure 2-1c: an index split whose boundary is enclosed by a
        # level-0 region promotes that region's entry ("d0") into the
        # node above, labelled with its original partition level.  The
        # promotion-storm workload concentrates mass on both sides of
        # successive binary boundaries, which forces the configuration.
        from repro.workloads import promotion_storm

        def live_guard(tree):
            stack = [tree.root_entry()]
            while stack:
                entry = stack.pop()
                if entry.level == 0:
                    continue
                node = tree.store.read(entry.page)
                for child in node.entries:
                    if child.level < node.index_level - 1:
                        return child, node
                    stack.append(child)
            return None, None

        tree = BVTree(DataSpace.unit(2, resolution=16), data_capacity=4, fanout=4)
        guard = holder = None
        for i, p in enumerate(promotion_storm(4000, 2, seed=21)):
            tree.insert(p, i, replace=True)
            if tree.stats.promotions:
                guard, holder = live_guard(tree)
                if guard is not None:
                    break
        assert tree.stats.promotions >= 1, "no promotion was forced"
        assert guard is not None, "no guard ever survived placement"
        # "There is no confusion between guards and guarded within an
        # index node, because every entry is labelled with its partition
        # level": the level label is what identifies it.
        assert guard.level < holder.index_level - 1
        tree.check(sample_points=50, check_owners=True)

    def test_2_1d_deeper_growth_preserves_all_invariants(self):
        # Figure 2-1d: after further splits and a third index level, the
        # root holds guards of several partition levels (d0 and b1), the
        # guard set re-constitutes the hierarchy during descent, and
        # every search still costs height+1 pages (§6).
        from repro.workloads import promotion_storm

        tree = BVTree(DataSpace.unit(2, resolution=16), data_capacity=4, fanout=4)
        points = []
        for i, p in enumerate(promotion_storm(4000, 2, seed=22)):
            tree.insert(p, i, replace=True)
            points.append(p)
        assert tree.height >= 3
        stats = tree.tree_stats()
        assert stats.total_guards >= 1
        assert len(stats.guards_by_level) >= 1
        tree.check(sample_points=100, check_owners=True)
        peak_guard_set = 0
        for p in points[:200]:
            probe = tree.search(p)
            assert probe.nodes_visited == tree.height + 1
            peak_guard_set = max(peak_guard_set, probe.max_guard_set)
        # §3: at index level x the guard set holds at most x-1 members.
        assert peak_guard_set <= tree.height - 1


class TestFigure41GuardSplit:
    """Figure 4-1: a promoted data page splits; the inner part demotes."""

    @pytest.fixture
    def tree_with_guard(self):
        """A hand-built two-level tree with a level-0 guard at the root.

        The guard (key ε, the analogue of d0) owns the uncovered paths
        '101…'; its page holds 4 records so one more insert splits it.
        """
        space = DataSpace.unit(1, resolution=24)
        tree = BVTree(space, data_capacity=4, fanout=4)
        store = tree.store
        store.free(tree.root_page)

        def data_page(*xs):
            page = DataPage()
            for i, x in enumerate(xs):
                point = (x,)
                page.insert(space.point_path(point), point, f"v{x}")
            return store.allocate(page, size_class=0)

        d0 = data_page(0.651, 0.663, 0.690, 0.699)  # paths 101…
        a1 = store.allocate(
            IndexNode(1, [Entry(key("0"), 0, data_page(0.1, 0.2))]),
            size_class=1,
        )
        f1 = store.allocate(
            IndexNode(1, [Entry(key("100"), 0, data_page(0.52, 0.55))]),
            size_class=1,
        )
        b1 = store.allocate(
            IndexNode(1, [Entry(key("11"), 0, data_page(0.8, 0.9))]),
            size_class=1,
        )
        root = store.allocate(
            IndexNode(
                2,
                [
                    Entry(key("0"), 1, a1),
                    Entry(key("1"), 1, f1),
                    Entry(key("11"), 1, b1),
                    Entry(ROOT_KEY, 0, d0),  # the d0 guard
                ],
            ),
            size_class=2,
        )
        tree.root_page = root
        tree.height = 2
        tree.count = 10
        stack = [tree.root_entry()]
        while stack:
            entry = stack.pop()
            content = store.read(entry.page)
            if isinstance(content, IndexNode):
                for child in content.entries:
                    tree.register_entry(child)
                    stack.append(child)
        tree.check(check_occupancy=False, check_justification=False)
        return tree, d0

    def test_guard_page_owns_uncovered_paths(self, tree_with_guard):
        tree, d0 = tree_with_guard
        found = tree.search((0.67,))  # path 101…
        assert found.entry.page == d0

    def test_inner_demotes_outer_keeps_guarding(self, tree_with_guard):
        tree, d0 = tree_with_guard
        tree.insert((0.671,), "overflow trigger")  # fifth 101… record
        tree.check(check_occupancy=False, check_justification=False)
        root: IndexNode = tree.store.read(tree.root_page)
        # The outer (ε) part still guards at the root — Figure 4-1's d0'.
        outer = root.find(ROOT_KEY, 0)
        assert outer is not None and outer.page == d0
        # The inner part (d0'') was demoted: it now lives as a native in
        # the level-1 node whose region contains it ('1', node f1).
        new_l0 = [
            k for k in tree.keys[0] if k.nbits > 0 and k.bit_string().startswith("10")
        ]
        assert new_l0, "no inner region was created"
        inner_entry = tree.keys[0][new_l0[0]]
        from repro.core.descent import find_owner

        owner_page = find_owner(tree, inner_entry)
        owner: IndexNode = tree.store.read(owner_page)
        assert owner.index_level == 1  # native position, not the root
        assert tree.stats.demotions >= 1
        # All records remain reachable on both sides of the split.
        assert tree.get((0.671,)) == "overflow trigger"
        assert tree.get((0.651,)) == "v0.651"
