"""Integration: the durable store composed with the rest of the stack.

Two compositions the storage layer promises to support unchanged:

- ``BVTree`` over ``BufferPool`` over ``DurableStore`` — the pool is a
  drop-in decorator, so every query answer and every structural counter
  must match a plain in-memory tree bit for bit, while the WAL quietly
  records everything underneath;
- ``repro.storage.snapshot`` over a *recovered* tree — a tree rebuilt
  from a crashed directory must snapshot and reload like any other.
"""

import random

import pytest

from repro.core.tree import BVTree
from repro.errors import SimulatedCrashError
from repro.geometry.space import DataSpace
from repro.storage.buffer import BufferPool
from repro.storage.durable.recovery import (
    create_durable_tree,
    open_durable_tree,
)
from repro.storage.durable.store import DurableStore
from repro.storage.faults import FaultPlan
from repro.storage.pager import PageStore
from repro.storage.snapshot import dumps_tree, loads_tree
from repro.workloads import churn
from tests.conftest import make_points


def soak_ops(n=1200, seed=81):
    space = DataSpace.unit(2, resolution=16)
    seen = set()
    points = []
    for point in make_points(n, 2, seed=seed):
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            points.append(point)
    ops = []
    value = 0
    for verb, point in churn(points, delete_fraction=0.35, seed=seed):
        ops.append((verb, point, value))
        value += 1
    return space, ops


def drive(tree, ops):
    for verb, point, value in ops:
        if verb == "insert":
            tree.insert(point, value, replace=True)
        else:
            tree.delete(point)


class TestDurableBehindBufferPool:
    def build_pair(self, tmp_path, capacity=24):
        space, ops = soak_ops()
        durable = DurableStore(tmp_path / "store", sync="os")
        pool = BufferPool(durable, capacity=capacity)
        buffered = BVTree(space, data_capacity=4, fanout=4, store=pool)
        plain = BVTree(space, data_capacity=4, fanout=4)
        return buffered, plain, pool, durable, ops

    def test_identical_answers_and_counters(self, tmp_path):
        buffered, plain, pool, durable, ops = self.build_pair(tmp_path)
        base_buffered = buffered.stats.snapshot()
        base_plain = plain.stats.snapshot()
        drive(buffered, ops)
        drive(plain, ops)

        assert buffered.count == plain.count
        assert buffered.height == plain.height
        assert sorted(buffered.items()) == sorted(plain.items())
        for box in (
            ((0.0, 0.0), (1.0, 1.0)),
            ((0.2, 0.1), (0.7, 0.6)),
            ((0.45, 0.45), (0.55, 0.55)),
        ):
            assert sorted(buffered.range_query(*box).records) == sorted(
                plain.range_query(*box).records
            )
        live = [p for p, _ in plain.items()]
        for point in random.Random(82).sample(live, min(60, len(live))):
            assert buffered.get(point) == plain.get(point)
        # The pool and the WAL must not change *what* the tree does —
        # every split, merge and redistribution happens in the same
        # place, so the structural counters agree exactly.
        assert buffered.stats.delta(base_buffered) == plain.stats.delta(
            base_plain
        )
        buffered.check(sample_points=40, check_occupancy=False)
        durable.close(checkpoint=False)

    def test_pool_actually_caches_and_wal_actually_logs(self, tmp_path):
        buffered, _, pool, durable, ops = self.build_pair(tmp_path)
        drive(buffered, ops[:400])
        assert pool.stats.hits > 0
        assert durable.wal_stats.appends > 0
        assert durable.wal_stats.commits > 0
        durable.close(checkpoint=False)


class TestSnapshotOfRecoveredTree:
    def test_recovered_tree_snapshots_and_reloads(self, tmp_path):
        space, ops = soak_ops(n=600, seed=83)
        tree = create_durable_tree(
            tmp_path / "crashing",
            space,
            data_capacity=4,
            fanout=4,
            faults=FaultPlan(
                crash_after_appends=240, tail="torn", torn_fraction=0.4
            ),
            sync="os",
        )
        with pytest.raises(SimulatedCrashError):
            drive(tree, ops)

        recovered, report = open_durable_tree(tmp_path / "crashing", sync="os")
        assert recovered.count > 0

        clone = loads_tree(dumps_tree(recovered))
        assert clone.count == recovered.count
        assert sorted(clone.items()) == sorted(recovered.items())
        box = ((0.1, 0.1), (0.9, 0.9))
        assert sorted(clone.range_query(*box).records) == sorted(
            recovered.range_query(*box).records
        )
        clone.check(check_occupancy=False, check_justification=False)
        # The round trip composes: a snapshot of the clone reloads to
        # the same record set again (page ids are allocation artifacts,
        # so the JSON itself is not compared byte for byte).
        grandchild = loads_tree(dumps_tree(clone))
        assert sorted(grandchild.items()) == sorted(recovered.items())
        recovered.store.close(checkpoint=False)
