"""Soak test: a long mixed workload with continuous verification.

A single sustained session — growth, churn, shrink, regrowth — with the
full invariant checker (owners included) run at phase boundaries and all
query paths exercised against a model.  This is the closest the suite
comes to production traffic.
"""

import random

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace


def test_lifecycle_soak():
    space = DataSpace.unit(2, resolution=14)
    tree = BVTree(space, data_capacity=6, fanout=6)
    rng = random.Random(0xC0FFEE)
    model: dict[int, tuple[tuple[float, float], int]] = {}

    def fresh_point():
        # Quantised to the resolution so model keys equal index keys.
        return (
            int(rng.random() * 2**14) / 2**14,
            int(rng.random() * 2**14) / 2**14,
        )

    def verify(sample: int = 150):
        assert len(tree) == len(model)
        for path, (point, value) in list(model.items())[:sample]:
            assert tree.get(point) == value
        tree.check(
            sample_points=50, check_owners=True, check_occupancy=False
        )

    def do_insert(step: int) -> None:
        point = fresh_point()
        path = space.point_path(point)
        tree.insert(point, step, replace=True)
        model[path] = (point, step)

    def do_delete() -> None:
        path = rng.choice(list(model))
        point, value = model.pop(path)
        assert tree.delete(point) == value

    # Phase 1: pure growth.
    for step in range(4000):
        do_insert(step)
    verify()
    grown_height = tree.height
    assert grown_height >= 3

    # Phase 2: heavy churn around a steady state.
    for step in range(4000, 10000):
        if model and rng.random() < 0.5:
            do_delete()
        else:
            do_insert(step)
        if step % 2000 == 0:
            verify()
    verify()

    # Phase 3: drain to (nearly) nothing.
    while len(model) > 25:
        do_delete()
    verify()
    assert tree.height <= grown_height

    # Phase 4: regrow and final audit.
    for step in range(10000, 13000):
        do_insert(step)
    verify()
    stats = tree.tree_stats()
    assert stats.min_data_occupancy >= 1
    # Every search still costs exactly height + 1 pages.
    for path, (point, _) in list(model.items())[:100]:
        assert tree.search(point).nodes_visited == tree.height + 1
