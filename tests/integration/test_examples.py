"""Smoke tests: every example script runs cleanly end to end.

Examples are part of the public surface (README points users at them),
so a broken example is a broken deliverable.  Each runs in-process via
``runpy``; the scripts' internal assertions double as checks.
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "geo_points",
        "partial_match",
        "worst_case_analysis",
        "adversarial_demo",
        "spatial_objects",
        "nearest_neighbor",
    } <= names
