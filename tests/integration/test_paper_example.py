"""The paper's worked example (§3.1, Figures 2-1a…2-1d), reconstructed.

The figures' regions are schematic, so the test builds a BV-tree with the
same *structure* — a three-level index whose root holds two unpromoted
entries plus a level-0 guard and level-1 guards, with a further level-0
guard one level down — and verifies the §3.1 search narrative exactly:

- at the root, guard ``d0`` matches and joins the guard set;
- one level down, guard ``b0`` is a better match and ``d0`` is discarded;
- at index level 1, ``b0`` has returned to its original level, beats the
  unpromoted ``a0``, and the search ends in ``b0``'s page — a notional
  backtrack with no node revisited, in exactly ``height + 1`` page reads.
"""

import pytest

from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace


def key(bits: str) -> RegionKey:
    return RegionKey.from_bits(bits)


@pytest.fixture
def paper_tree():
    """A hand-built BV-tree mirroring Figure 2-1d's index structure."""
    space = DataSpace.unit(1, resolution=24)
    tree = BVTree(space, data_capacity=4, fanout=4)
    store = tree.store
    tree.store.free(tree.root_page)  # replace the fresh root data page

    pages = {
        name: store.allocate(DataPage(), size_class=0)
        for name in ("a0", "b0", "c1d", "d0", "f1d", "b1d", "g1d")
    }

    a1 = store.allocate(
        IndexNode(1, [Entry(key("01"), 0, pages["a0"])]), size_class=1
    )
    c1 = store.allocate(
        IndexNode(1, [Entry(key("001"), 0, pages["c1d"])]), size_class=1
    )
    f1 = store.allocate(
        IndexNode(1, [Entry(key("1"), 0, pages["f1d"])]), size_class=1
    )
    b1 = store.allocate(
        IndexNode(1, [Entry(key("11"), 0, pages["b1d"])]), size_class=1
    )
    g1 = store.allocate(
        IndexNode(1, [Entry(key("111"), 0, pages["g1d"])]), size_class=1
    )

    a2 = store.allocate(
        IndexNode(
            2,
            [
                Entry(key("0"), 1, a1),     # a1 (unpromoted)
                Entry(key("001"), 1, c1),   # c1 (unpromoted)
                Entry(key("00"), 0, pages["b0"]),  # b0: promoted guard
            ],
        ),
        size_class=2,
    )
    c2 = store.allocate(
        IndexNode(2, [Entry(key("111"), 1, g1)]), size_class=2
    )

    root = store.allocate(
        IndexNode(
            3,
            [
                Entry(ROOT_KEY, 2, a2),      # a2 (unpromoted)
                Entry(key("111"), 2, c2),    # c2 (unpromoted)
                Entry(ROOT_KEY, 0, pages["d0"]),  # d0: level-0 guard
                Entry(key("11"), 1, b1),     # b1: level-1 guard
                Entry(key("1"), 1, f1),      # f1: level-1 guard
            ],
        ),
        size_class=3,
    )
    tree.root_page = root
    tree.height = 3

    # Register every stored key (the registry is derived state).
    stack = [tree.root_entry()]
    while stack:
        entry = stack.pop()
        node_or_page = store.read(entry.page)
        if isinstance(node_or_page, IndexNode):
            for child in node_or_page.entries:
                tree.register_entry(child)
                stack.append(child)
    return tree, pages


def path_for(tree, bits: str) -> int:
    """A full-resolution path starting with the given bits (rest zeros)."""
    return int(bits, 2) << (tree.space.path_bits - len(bits))


class TestFigure21d:
    def test_structure_is_well_formed(self, paper_tree):
        tree, _ = paper_tree
        tree.check(check_occupancy=False, check_justification=False)

    def test_search_for_point_plus(self, paper_tree):
        # §3.1's narrative: the point + lies in b0's region ('000…',
        # outside c1's '001' hole).
        tree, pages = paper_tree
        from repro.core.descent import locate

        found = locate(tree, path_for(tree, "0001"))
        assert found.entry.page == pages["b0"]
        assert found.nodes_visited == tree.height + 1  # no backtracking

    def test_d0_discarded_when_b0_matches_better(self, paper_tree):
        # At index level 2 the guard set holds d0; b0 is the better match
        # and replaces it ("the latter is discarded").
        tree, pages = paper_tree
        from repro.core.descent import locate

        found = locate(tree, path_for(tree, "0001"))
        assert all(ref[0].page != pages["d0"] for ref in found.guards.refs())

    def test_unpromoted_a0_wins_outside_guard(self, paper_tree):
        # A point in a0's region ('01…') never meets b0.
        tree, pages = paper_tree
        from repro.core.descent import locate

        found = locate(tree, path_for(tree, "0111"))
        assert found.entry.page == pages["a0"]

    def test_routes_into_promoted_subtrees(self, paper_tree):
        tree, pages = paper_tree
        from repro.core.descent import locate

        # f1's subtree serves '10…'; b1's serves '110…'; c2's '111…'.
        assert locate(tree, path_for(tree, "100")).entry.page == pages["f1d"]
        assert locate(tree, path_for(tree, "110")).entry.page == pages["b1d"]
        assert locate(tree, path_for(tree, "111")).entry.page == pages["g1d"]

    def test_all_paths_cost_height_plus_one(self, paper_tree):
        # §6: the unbalanced index tree still has fixed-length searches.
        tree, _ = paper_tree
        from repro.core.descent import locate

        for bits in ("0001", "001", "0111", "100", "110", "111", "000"):
            found = locate(tree, path_for(tree, bits))
            assert found.nodes_visited == tree.height + 1

    def test_inserts_land_in_the_figure_pages(self, paper_tree):
        tree, pages = paper_tree
        tree.insert((0.001,), "in b0")   # path 000…
        tree.insert((0.4,), "in a0")     # path 01…
        tree.insert((0.6,), "in f1")     # path 10…
        assert "in b0" in [
            v for _, v in tree.store.read(pages["b0"]).records.values()
        ]
        assert "in a0" in [
            v for _, v in tree.store.read(pages["a0"]).records.values()
        ]
        assert "in f1" in [
            v for _, v in tree.store.read(pages["f1d"]).records.values()
        ]
        for point in ((0.001,), (0.4,), (0.6,)):
            assert tree.contains(point)
