"""Integration: a BV-tree running through an LRU buffer pool.

The buffer pool is a drop-in store decorator; the tree's behaviour must
be identical, and the pool's hit ratio must respond to its capacity the
way a database buffer should (bigger pool, fewer physical reads).
"""

import random

import pytest

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.storage.buffer import BufferPool
from repro.storage.pager import PageStore
from tests.conftest import make_points


def build_buffered(capacity: int, n: int = 2000):
    space = DataSpace.unit(2, resolution=16)
    pool = BufferPool(PageStore(1024), capacity=capacity)
    tree = BVTree(space, data_capacity=8, fanout=8, store=pool)
    for i, p in enumerate(make_points(n, 2, seed=70)):
        tree.insert(p, i, replace=True)
    return tree, pool


class TestBehaviouralEquivalence:
    def test_all_operations_work_through_the_pool(self):
        tree, pool = build_buffered(capacity=32)
        points = list(dict.fromkeys(make_points(2000, 2, seed=70)))
        for p in random.Random(71).sample(points, 200):
            tree.get(p)
        result = tree.range_query((0.2, 0.2), (0.5, 0.5))
        assert len(result) > 0
        for p in points[:300]:
            tree.delete(p)
        tree.check(sample_points=50, check_occupancy=False)

    def test_same_answers_as_unbuffered(self):
        buffered, _ = build_buffered(capacity=16)
        space = DataSpace.unit(2, resolution=16)
        plain = BVTree(space, data_capacity=8, fanout=8)
        for i, p in enumerate(make_points(2000, 2, seed=70)):
            plain.insert(p, i, replace=True)
        box = ((0.1, 0.3), (0.6, 0.8))
        assert set(buffered.range_query(*box).points()) == set(
            plain.range_query(*box).points()
        )
        assert buffered.height == plain.height


class TestCacheEconomics:
    def test_hit_ratio_grows_with_capacity(self):
        probes = list(dict.fromkeys(make_points(2000, 2, seed=70)))
        ratios = []
        for capacity in (4, 32, 256):
            tree, pool = build_buffered(capacity=capacity)
            pool.stats.reset()
            pool.store.stats.reset()
            rng = random.Random(72)
            for _ in range(500):
                tree.get(rng.choice(probes))
            ratios.append(pool.stats.hit_ratio)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 0.5

    def test_upper_levels_stay_resident(self):
        # Root and upper index nodes are touched by every search; with a
        # modest pool they stay resident, so physical reads per search
        # approach just the cold leaf pages.
        tree, pool = build_buffered(capacity=64)
        pool.stats.reset()
        pool.store.stats.reset()
        points = list(dict.fromkeys(make_points(2000, 2, seed=70)))
        rng = random.Random(73)
        searches = 400
        for _ in range(searches):
            tree.get(rng.choice(points))
        logical = pool.stats.logical_reads
        physical = pool.store.stats.reads
        assert physical < logical / 2

    def test_tiny_pool_still_correct(self):
        tree, pool = build_buffered(capacity=1)
        points = list(dict.fromkeys(make_points(2000, 2, seed=70)))
        for p in points[:100]:
            tree.get(p)
        assert pool.stats.hit_ratio < 0.9
        tree.check(sample_points=30)
