"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

PERF_TINY = [
    "perf",
    "--scale", "smoke",
    "--n", "300",
    "--repeats", "1",
    "--warmup", "0",
]


class TestFigures:
    def test_figure_7_1(self, capsys):
        assert main(["figures", "--fanout", "24"]) == 0
        out = capsys.readouterr().out
        assert "F = 24" in out
        assert "worst-case height" in out

    def test_integer_variant(self, capsys):
        assert main(["figures", "--fanout", "24", "--integer"]) == 0
        assert "F = 24" in capsys.readouterr().out


class TestThresholds:
    def test_default(self, capsys):
        assert main(["thresholds"]) == 0
        out = capsys.readouterr().out
        assert "GB" in out
        assert "24" in out and "120" in out

    def test_custom_page_size(self, capsys):
        assert main(["thresholds", "--fanouts", "60", "--page-bytes", "4096"]) == 0
        assert "4096" in capsys.readouterr().out


class TestDemo:
    def test_demo_runs_and_verifies(self, capsys):
        assert main(
            ["demo", "--workload", "clustered", "--n", "2000", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "invariants verified" in out
        assert "records" in out

    def test_demo_uniform_policy(self, capsys):
        assert main(
            ["demo", "--n", "1500", "--policy", "uniform", "--dims", "3"]
        ) == 0
        assert "uniform pages" in capsys.readouterr().out


class TestCompare:
    def test_compare_two_structures(self, capsys):
        assert main(
            [
                "compare",
                "--n", "2000",
                "--structures", "bv", "kdb",
                "--data-capacity", "8",
                "--fanout", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "bv" in out and "kdb" in out
        assert "forced splits" in out


class TestPerf:
    def test_text_report_without_writing(self, capsys):
        assert main(PERF_TINY + ["--no-write"]) == 0
        out = capsys.readouterr().out
        assert "bulk_load" in out
        assert "range_rectpath" in out
        assert "bulk_load_speedup" in out

    def test_writes_snapshot_to_out_path(self, capsys, tmp_path):
        target = tmp_path / "BENCH_core.json"
        assert main(PERF_TINY + ["--out", str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["suite"] == "core"
        assert data["scale"]["n_points"] == 300
        names = [r["name"] for r in data["results"]]
        assert {"insert", "bulk_load", "exact_match", "range", "knn"} <= set(
            names
        )
        assert data["derived"]["range_pages_equal"] is True

    def test_json_output(self, capsys):
        assert main(
            PERF_TINY + ["--no-write", "--format", "json", "--only", "exact_match"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in data["results"]] == ["exact_match"]

    def test_columnar_lane_reports_oracle_equal(self, capsys):
        assert main(
            PERF_TINY + ["--no-write", "--layout", "columnar", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scale"]["layout"] == "columnar"
        block = data["columnar"]
        assert block["oracle"]["equal"] is True
        assert block["oracle"]["exact_equal"] is True
        assert block["oracle"]["range_equal"] is True
        assert block["oracle"]["knn_equal"] is True
        assert block["speedups"]["exact_match"] > 0
        assert set(block["lanes"]) == {"object", "columnar"}

    def test_columnar_block_rendered_in_text(self, capsys):
        assert main(PERF_TINY + ["--no-write"]) == 0
        out = capsys.readouterr().out
        assert "columnar" in out
        assert "layout oracle" in out
        assert "EQUAL" in out

    def test_baseline_comparison(self, capsys, tmp_path):
        snapshot = tmp_path / "base.json"
        assert main(PERF_TINY + ["--out", str(snapshot)]) == 0
        capsys.readouterr()
        assert main(
            PERF_TINY + ["--no-write", "--baseline", str(snapshot)]
        ) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "speedup" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--workload", "bogus"])


EXPLAIN_TINY = [
    "explain",
    "--n", "400",
    "--data-capacity", "4",
    "--fanout", "4",
]

TRACE_TINY = [
    "trace",
    "--n", "400",
    "--data-capacity", "4",
    "--fanout", "4",
]


class TestExplain:
    def test_point_text_report(self, capsys):
        assert main(EXPLAIN_TINY + ["--point", "0.5", "0.5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN point")
        assert "pages touched:" in out

    def test_rect_json_report(self, capsys):
        assert main(
            EXPLAIN_TINY
            + ["--rect", "0.2", "0.2", "0.6", "0.6", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "range"
        assert data["pages_touched"] > 0
        assert data["result"]["records"] > 0

    def test_knn_report(self, capsys):
        assert main(EXPLAIN_TINY + ["--knn", "0.5", "0.5", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN knn" in out
        assert "neighbours=5" in out

    def test_requires_exactly_one_query(self, capsys):
        assert main(EXPLAIN_TINY) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            EXPLAIN_TINY + ["--point", "0.5", "0.5", "--knn", "0.1", "0.1"]
        ) == 2

    def test_rect_arity_checked(self, capsys):
        assert main(EXPLAIN_TINY + ["--rect", "0.1", "0.2", "0.9"]) == 2
        assert "--rect needs 4 floats" in capsys.readouterr().err


class TestTrace:
    def test_ring_trace_counts_match_counters(self, capsys):
        assert main(TRACE_TINY) == 0
        out = capsys.readouterr().out
        assert "event kind" in out
        assert "data_split" in out
        assert "op_begin" in out

    def test_jsonl_trace_writes_artifact(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(TRACE_TINY + ["--out", str(path)]) == 0
        capsys.readouterr()
        from repro.obs import read_jsonl

        events = read_jsonl(path)
        assert events
        assert {e.kind for e in events} >= {"op_begin", "op_end", "page_read"}


DOCTOR_TINY = [
    "doctor",
    "--n", "1500",
    "--data-capacity", "8",
    "--fanout", "8",
]


class TestDoctor:
    def test_healthy_workload_passes_all_guarantees(self, capsys):
        assert main(DOCTOR_TINY) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out
        assert "height" in out
        assert "no_cascade" in out
        assert "PASS" in out
        assert "audit" in out

    def test_churn_workload_with_json_format(self, capsys):
        assert main(
            DOCTOR_TINY + ["--churn", "0.3", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["audit"]["clean"] is True
        assert data["health"]["ok"] is True
        assert set(data["health"]["verdicts"]) == {
            "occupancy", "height", "no_cascade",
        }
        assert data["exit_code"] == 0

    def test_columnar_layout_passes_all_guarantees(self, capsys):
        assert main(
            DOCTOR_TINY + ["--layout", "columnar", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["health"]["ok"] is True
        assert data["audit"]["clean"] is True
        assert data["exit_code"] == 0

    def test_series_out_writes_columnar_artifact(self, capsys, tmp_path):
        path = tmp_path / "series.json"
        assert main(
            DOCTOR_TINY + ["--every", "100", "--series-out", str(path)]
        ) == 0
        record = json.loads(path.read_text())
        series = record["timeseries"]
        assert series["type"] == "timeseries"
        assert series["ops"]
        columns = series["metrics"]
        assert "monitor.points" in columns
        assert all(
            len(col) == len(series["ops"]) for col in columns.values()
        )

    def test_bench_mode_reads_health_block(self, capsys, tmp_path):
        snapshot = tmp_path / "BENCH_test.json"
        snapshot.write_text(json.dumps({
            "health": {
                "ok": True,
                "verdicts": {
                    "occupancy": "ok",
                    "height": "ok",
                    "no_cascade": "ok",
                },
            },
        }))
        assert main(["doctor", "--bench", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "[OK] occupancy" in out

    def test_bench_mode_fails_on_unhealthy_block(self, capsys, tmp_path):
        snapshot = tmp_path / "BENCH_test.json"
        snapshot.write_text(json.dumps({
            "health": {"ok": False, "verdicts": {"height": "violation"}},
        }))
        assert main(["doctor", "--bench", str(snapshot)]) == 1

    def test_bench_mode_without_health_block_exits_2(self, capsys, tmp_path):
        snapshot = tmp_path / "BENCH_test.json"
        snapshot.write_text(json.dumps({"results": []}))
        assert main(["doctor", "--bench", str(snapshot)]) == 2
        assert "no health block" in capsys.readouterr().err
