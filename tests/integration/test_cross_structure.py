"""Cross-structure integration: every index answers identically.

The baselines exist to be *compared* with the BV-tree, which only makes
sense if they agree on the answers and differ only in cost; these tests
pin the agreement.
"""

import random

import pytest

from repro.bench.harness import INDEX_KINDS, build_index, index_occupancies, search_cost
from repro.geometry.space import DataSpace
from repro.workloads import clustered, uniform

KINDS = sorted(INDEX_KINDS)


@pytest.fixture(scope="module")
def loaded():
    space = DataSpace.unit(2, resolution=14)
    points = list(uniform(1200, 2, seed=90))
    indexes = {
        kind: build_index(kind, space, points, data_capacity=8, fanout=8)
        for kind in KINDS
    }
    return space, points, indexes


class TestAgreement:
    def test_all_hold_every_point(self, loaded):
        space, points, indexes = loaded
        probe = random.Random(91).sample(points, 150)
        for kind, index in indexes.items():
            for p in probe:
                index.get(p)  # raises if lost

    def test_range_queries_agree(self, loaded):
        space, points, indexes = loaded
        rng = random.Random(92)
        for _ in range(8):
            lows = (rng.uniform(0, 0.7), rng.uniform(0, 0.7))
            highs = (
                lows[0] + rng.uniform(0.05, 0.3),
                lows[1] + rng.uniform(0.05, 0.3),
            )
            answers = {
                kind: frozenset(index.range_query(lows, highs).points())
                for kind, index in indexes.items()
            }
            reference = answers["bv"]
            for kind, answer in answers.items():
                assert answer == reference, f"{kind} disagrees with bv"

    def test_search_costs_are_path_lengths(self, loaded):
        space, points, indexes = loaded
        for kind, index in indexes.items():
            cost = search_cost(index, points[0])
            assert cost == index.height + 1, kind

    def test_occupancies_reported_for_all(self, loaded):
        space, points, indexes = loaded
        for kind, index in indexes.items():
            data, idx = index_occupancies(index)
            assert sum(data) >= len(set(points)) * 0 + 1
            assert len(data) >= 1


class TestSharedStoreAcrossStructures:
    def test_bv_and_btree_can_share_a_store(self):
        from repro.baselines.btree import BPlusTree
        from repro.core.tree import BVTree
        from repro.storage.pager import PageStore

        store = PageStore(4096)
        space = DataSpace.unit(2, resolution=12)
        tree = BVTree(space, data_capacity=6, fanout=6, store=store)
        btree = BPlusTree(leaf_capacity=6, fanout=6, store=store)
        for i, p in enumerate(uniform(300, 2, seed=93)):
            tree.insert(p, i, replace=True)
            btree.insert(i, p)
        tree.check(check_occupancy=False)
        btree.check()
        assert store.live_pages() > 2


class TestBVWinsWhereItShould:
    def test_bv_never_forces_splits(self):
        # The defining contrast: identical workload, zero cascades for
        # the BV-tree, nonzero for K-D-B and balanced-BANG.
        space = DataSpace.unit(2, resolution=14)
        points = list(clustered(3000, 2, clusters=5, seed=94))
        bv = build_index("bv", space, points, data_capacity=4, fanout=4)
        kdb = build_index("kdb", space, points, data_capacity=4, fanout=4)
        bang = build_index("bang", space, points, data_capacity=4, fanout=4)
        assert kdb.stats.forced_splits > 0
        assert bang.stats.forced_splits > 0
        # BVTree has no forced-split counter because the operation does
        # not exist: splits never propagate downward by construction.
        bv.check(check_owners=True)

    def test_bv_occupancy_floor_beats_cascading_designs(self):
        space = DataSpace.unit(2, resolution=14)
        points = list(clustered(3000, 2, clusters=5, seed=95))
        bv = build_index("bv", space, points, data_capacity=6, fanout=6)
        kdb = build_index("kdb", space, points, data_capacity=6, fanout=6)
        bv_min = min(index_occupancies(bv)[0])
        kdb_min = min(index_occupancies(kdb)[0])
        assert bv_min >= bv.policy.min_data_occupancy()
        assert kdb_min < bv_min
