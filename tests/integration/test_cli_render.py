"""CLI rendering flags and remaining edge paths."""

import pytest

from repro.cli import main


class TestDemoRenderFlags:
    def test_show_tree(self, capsys):
        assert main(
            ["demo", "--n", "80", "--data-capacity", "4", "--fanout", "4",
             "--show-tree", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "index node" in out or "data page" in out

    def test_show_partition(self, capsys):
        assert main(
            ["demo", "--n", "80", "--data-capacity", "4", "--fanout", "4",
             "--show-partition"]
        ) == 0
        out = capsys.readouterr().out
        assert "page" in out.splitlines()[-1]

    def test_partition_rejected_for_3d(self, capsys):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            main(
                ["demo", "--n", "50", "--dims", "3", "--data-capacity", "4",
                 "--fanout", "4", "--show-partition"]
            )

    def test_compare_includes_spatial_free_kinds_only(self, capsys):
        # The compare table covers the point structures; spatial-object
        # structures are exercised by E-OBJ instead.
        assert main(["compare", "--n", "500", "--structures", "bv",
                     "--data-capacity", "4", "--fanout", "4"]) == 0
        assert "bv" in capsys.readouterr().out
