"""Regression: heavy churn at the smallest allowed uniform configuration.

F = 4 under the uniform policy is the harshest corner: guard chains eat
most of each node's capacity, nested-chain nodes can become temporarily
unsplittable (deferred splits), and merge re-placements can race with
the victim's own position (the rollback path in ``_try_absorb``).  This
run reproduces the exact shape of the fuzz sequence that uncovered all
three and pins their handling.
"""

import random

from repro.core.tree import BVTree
from repro.core.descent import locate
from repro.geometry.space import DataSpace


def test_tiny_uniform_mixed_churn():
    space = DataSpace.unit(2, resolution=10)
    tree = BVTree(space, data_capacity=4, fanout=4, policy="uniform")
    rng = random.Random(1001)  # the fuzz seed that found the corner
    model = {}
    for step in range(8000):
        r = rng.random()
        if model and r < 0.42:
            path = rng.choice(list(model))
            point, value = model.pop(path)
            assert tree.delete(point) == value
        elif model and r < 0.47:
            path = rng.choice(list(model))
            point, value = model[path]
            assert tree.get(point) == value
            assert tree.get_fast(point) == value
        else:
            point = tuple(
                int(rng.random() * 2**10) / 2**10 for _ in range(2)
            )
            tree.insert(point, step, replace=True)
            model[space.point_path(point)] = (point, step)
        if step % 2000 == 1999:
            assert len(tree) == len(model)
            for path in model:
                found = locate(tree, path)
                assert path in tree.store.read(found.entry.page).records
            tree.check(
                sample_points=40, check_owners=True, check_occupancy=False
            )
    # Deferred work is allowed here (that is the point of the corner),
    # but correctness is not negotiable.
    for path, (point, value) in list(model.items()):
        assert tree.delete(point) == value
    assert len(tree) == 0
    tree.check(check_occupancy=False)
