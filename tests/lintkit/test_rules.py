"""Per-rule fixtures: a bad snippet that must fire, a good one that must not."""

from tests.lintkit.conftest import codes


class TestR1FloatEquality:
    def test_flags_float_literal_comparison(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            def on_boundary(x):
                return x == 0.5
            """,
        )
        assert codes(findings) == ["R1"]

    def test_flags_coordinate_attribute_comparison(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            def same_box(a, b):
                return a.lows == b.lows and a.highs != b.highs
            """,
        )
        assert codes(findings) == ["R1", "R1"]

    def test_flags_division_result_comparison(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/spatial.py",
            """
            def midpoint_is(lo, hi, x):
                return (lo + hi) / 2 == x
            """,
        )
        assert codes(findings) == ["R1"]

    def test_integer_comparison_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            def same_depth(a, b):
                return a.nbits == b.nbits and len(a) != 3
            """,
        )
        assert findings == []

    def test_out_of_scope_path_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/analysis/mod.py",
            """
            def close_enough(x):
                return x == 0.5
            """,
        )
        assert findings == []


class TestR2EntriesMutation:
    def test_flags_remove_during_iteration(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def prune(node):
                for e in node.entries:
                    if e.level == 0:
                        node.entries.remove(e)
            """,
        )
        assert "R2" in codes(findings)

    def test_flags_node_add_during_iteration(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def widen(node, extra):
                for e in node.entries:
                    node.add(extra)
            """,
        )
        assert "R2" in codes(findings)

    def test_flags_subscript_assignment(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def swap(node, e2):
                for e in node.entries:
                    node.entries[0] = e2
            """,
        )
        assert "R2" in codes(findings)

    def test_iterating_a_copy_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def prune(node):
                for e in list(node.entries):
                    if e.level == 0:
                        node.entries.remove(e)
            """,
        )
        assert findings == []

    def test_mutating_a_different_node_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def migrate(source, target):
                for e in source.entries:
                    target.entries.append(e)
            """,
        )
        assert findings == []


class TestR3CorePagerLayering:
    def test_flags_pager_module_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            "from repro.storage.pager import PageStore\n",
        )
        assert codes(findings) == ["R3"]

    def test_flags_concrete_type_from_facade(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            "from repro.storage import PageStore\n",
        )
        assert codes(findings) == ["R3"]

    def test_flags_plain_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            "import repro.storage.pager\n",
        )
        assert codes(findings) == ["R3"]

    def test_protocol_import_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            "from repro.storage import Storage, default_store\n",
        )
        assert findings == []

    def test_pager_import_outside_core_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/baselines/mod.py",
            "from repro.storage.pager import PageStore\n",
        )
        assert findings == []


class TestR4MutatorsTouchStats:
    def test_flags_mutation_without_stats(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/ops.py",
            """
            def bulk_insert(tree, points):
                for p in points:
                    tree.count += 1
            """,
        )
        assert codes(findings) == ["R4"]

    def test_flags_store_write_without_stats(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/ops.py",
            """
            def rewrite(tree, page, content):
                tree.store.write(page, content)
            """,
        )
        assert codes(findings) == ["R4"]

    def test_stats_touch_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/ops.py",
            """
            def bulk_insert(tree, points):
                for p in points:
                    tree.count += 1
                    tree.stats.inserts += 1
            """,
        )
        assert findings == []

    def test_private_helper_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/ops.py",
            """
            def _rebalance(tree):
                tree.height += 1
            """,
        )
        assert findings == []

    def test_read_only_function_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/ops.py",
            """
            def measure(tree):
                return tree.count / max(1, tree.height)
            """,
        )
        assert findings == []


class TestR5SilentExcept:
    def test_flags_bare_except(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def guarded(op):
                try:
                    return op()
                except:
                    return None
            """,
        )
        assert codes(findings) == ["R5"]

    def test_flags_silently_swallowed_library_error(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def guarded(op):
                try:
                    op()
                except TreeInvariantError:
                    pass
            """,
        )
        assert codes(findings) == ["R5"]

    def test_flags_swallowed_tuple_member(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def guarded(op):
                try:
                    op()
                except (ValueError, ReproError):
                    ...
            """,
        )
        assert codes(findings) == ["R5"]

    def test_handled_library_error_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def contains(tree, point):
                try:
                    tree.get(point)
                except KeyNotFoundError:
                    return False
                return True
            """,
        )
        assert findings == []

    def test_silent_foreign_error_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def best_effort(op):
                try:
                    op()
                except ValueError:
                    pass
            """,
        )
        assert findings == []


class TestR6AllExports:
    def test_flags_public_name_missing_from_all(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/__init__.py",
            """
            from math import sqrt

            EPSILON = 1
            __all__ = ["sqrt"]
            """,
        )
        assert codes(findings) == ["R6"]
        assert "EPSILON" in findings[0].message

    def test_flags_unbound_name_in_all(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/__init__.py",
            """
            from math import sqrt

            __all__ = ["sqrt", "vanished"]
            """,
        )
        assert codes(findings) == ["R6"]
        assert "vanished" in findings[0].message

    def test_flags_missing_all_entirely(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/__init__.py",
            "from math import sqrt\n",
        )
        assert codes(findings) == ["R6"]

    def test_flags_duplicate_entry(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/__init__.py",
            """
            from math import sqrt

            __all__ = ["sqrt", "sqrt"]
            """,
        )
        assert codes(findings) == ["R6"]

    def test_consistent_all_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/__init__.py",
            """
            from math import sqrt

            __version__ = "1.0"
            __all__ = ["__version__", "sqrt"]
            """,
        )
        assert findings == []

    def test_non_init_module_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/helpers.py",
            "from math import sqrt\n",
        )
        assert findings == []


class TestR7AssertForInvariants:
    def test_flags_assert_in_library_code(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def narrow(node):
                assert node is not None
                return node
            """,
        )
        assert codes(findings) == ["R7"]

    def test_raise_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def narrow(node):
                if node is None:
                    raise TreeInvariantError("missing node")
                return node
            """,
        )
        assert findings == []

    def test_test_code_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/tests/test_mod.py",
            """
            def test_narrow():
                assert 1 + 1 == 2
            """,
        )
        assert findings == []

    def test_non_library_code_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/scripts/mod.py",
            """
            def narrow(node):
                assert node is not None
            """,
        )
        assert findings == []


class TestR8TypeCheckingOnly:
    def test_flags_runtime_use_of_guarded_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core.tree import BVTree

            def is_tree(x):
                return isinstance(x, BVTree)
            """,
        )
        assert codes(findings) == ["R8"]

    def test_annotation_use_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from __future__ import annotations

            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core.tree import BVTree

            def height(tree: BVTree) -> int:
                return tree.height
            """,
        )
        assert findings == []

    def test_unguarded_import_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from repro.core.tree import BVTree

            def is_tree(x):
                return isinstance(x, BVTree)
            """,
        )
        assert findings == []


class TestR10CorePrintBan:
    def test_flags_print_call(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def debug_split(entry):
                print("splitting", entry)
            """,
        )
        assert codes(findings) == ["R10"]

    def test_flags_logging_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            import logging
            """,
        )
        assert codes(findings) == ["R10"]

    def test_flags_from_warnings_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from warnings import warn
            """,
        )
        assert codes(findings) == ["R10"]

    def test_tracer_emission_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def record_split(tree, entry):
                tracer = tree.tracer
                if tracer.enabled:
                    tracer.emit("data_split", key=entry.key.bit_string())
            """,
        )
        assert findings == []

    def test_non_core_code_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/cli.py",
            """
            def show(report):
                print(report.render_text())
            """,
        )
        assert findings == []

    def test_shadowed_print_is_still_flagged(self, lint_snippet):
        # The rule is syntactic by design: a local named ``print`` in
        # core code is exactly the obfuscation it should refuse.
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def emit(print):
                print("not really builtins.print")
            """,
        )
        assert codes(findings) == ["R10"]


class TestR11CoreMetricsBan:
    def test_flags_metrics_import_in_core(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from repro.obs.metrics import MetricsRegistry

            def account(tree):
                return MetricsRegistry()
            """,
        )
        assert "R11" in codes(findings)

    def test_flags_instrument_mutation_through_tainted_name(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from repro.obs import Gauge

            def publish(tree):
                Gauge.set(tree.gauge, 1.0)
            """,
        )
        assert codes(findings).count("R11") == 2  # import + mutation

    def test_tracer_import_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from repro.obs.tracer import Tracer

            def wire(tree):
                tree.tracer = Tracer()
            """,
        )
        assert "R11" not in codes(findings)

    def test_unrelated_set_call_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def remember(registry, key):
                registry.set(key, 1)
                registry.observe(key)
            """,
        )
        assert "R11" not in codes(findings)

    def test_obs_layer_itself_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/obs/mod.py",
            """
            from repro.obs.metrics import MetricsRegistry

            def build():
                return MetricsRegistry()
            """,
        )
        assert "R11" not in codes(findings)


class TestR12StorageFileIO:
    def test_flags_open_in_storage_layer(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/helper.py",
            """
            def read_sidecar(path):
                with open(path, "rb") as fp:
                    return fp.read()
            """,
        )
        assert codes(findings) == ["R12"]

    def test_flags_path_write_methods_in_storage_layer(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/helper.py",
            """
            def install(path, payload):
                path.write_bytes(payload)
            """,
        )
        assert codes(findings) == ["R12"]

    def test_flags_os_level_io_in_storage_layer(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/helper.py",
            """
            import os

            def raw(path, payload):
                fd = os.open(path, 0)
                os.write(fd, payload)
            """,
        )
        assert codes(findings) == ["R12", "R12"]

    def test_wal_module_is_sanctioned(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/durable/wal.py",
            """
            def persist(path, payload):
                with open(path, "ab") as fp:
                    fp.write(payload)
            """,
        )
        assert "R12" not in codes(findings)

    def test_pagefile_module_is_sanctioned(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/durable/pagefile.py",
            """
            def install(path, payload):
                path.write_bytes(payload)
            """,
        )
        assert "R12" not in codes(findings)

    def test_flags_retyped_on_disk_name_anywhere_in_library(
        self, lint_snippet
    ):
        _, findings = lint_snippet(
            "proj/repro/cli.py",
            """
            import os

            def wal_path(directory):
                return os.path.join(directory, "wal.log")
            """,
        )
        assert codes(findings) == ["R12"]

    def test_store_module_may_define_the_names(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/durable/store.py",
            """
            WAL_NAME = "wal.log"
            PAGEFILE_NAME = "pages.dat"
            """,
        )
        assert "R12" not in codes(findings)

    def test_open_outside_storage_is_allowed(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/cli.py",
            """
            def load(path):
                with open(path) as fp:
                    return fp.read()
            """,
        )
        assert "R12" not in codes(findings)

    def test_tests_are_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/tests/storage/test_crashes.py",
            """
            def truncate_wal(directory, offset):
                with open(directory / "wal.log", "r+b") as fp:
                    fp.truncate(offset)
            """,
        )
        assert "R12" not in codes(findings)


class TestR13ColumnarColumns:
    def test_flags_column_read_in_library(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/descent.py",
            """
            def peek(node):
                return node._c_nat_aligned[0]
            """,
        )
        assert codes(findings) == ["R13"]

    def test_flags_column_write_in_library(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/snapshot.py",
            """
            def clobber(page):
                page._c_paths = []
            """,
        )
        assert codes(findings) == ["R13"]

    def test_flags_guard_columns_too(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/query.py",
            """
            def guards(node):
                return list(node._c_g_entries)
            """,
        )
        assert codes(findings) == ["R13"]

    def test_columnar_module_is_sanctioned(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/columnar.py",
            """
            def paths(page):
                return list(page._c_paths)
            """,
        )
        assert "R13" not in codes(findings)

    def test_other_private_attributes_are_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/descent.py",
            """
            def size(guards):
                return len(guards._by_level)
            """,
        )
        assert "R13" not in codes(findings)

    def test_tests_are_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/tests/core/test_columnar.py",
            """
            def column_lengths(node):
                return len(node._c_nat_aligned), len(node._c_g_aligned)
            """,
        )
        assert "R13" not in codes(findings)


class TestR14WallClock:
    def test_flags_module_call_in_core(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert codes(findings) == ["R14"]

    def test_flags_aliased_module_call_in_obs(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/obs/mod.py",
            """
            import time as clock

            def stamp():
                return clock.time()
            """,
        )
        assert codes(findings) == ["R14"]

    def test_flags_direct_import_call(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/obs/mod.py",
            """
            from time import time

            def stamp():
                return time()
            """,
        )
        assert codes(findings) == ["R14"]

    def test_flags_renamed_direct_import_call(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from time import time as now

            def stamp():
                return now()
            """,
        )
        assert codes(findings) == ["R14"]

    def test_monotonic_clocks_are_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/obs/mod.py",
            """
            import time
            from time import monotonic, perf_counter

            def interval():
                t0 = perf_counter()
                deadline = monotonic() + 1.0
                return time.perf_counter() - t0, deadline
            """,
        )
        assert "R14" not in codes(findings)

    def test_other_layers_are_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/perf/mod.py",
            """
            import time

            def created():
                return time.time()
            """,
        )
        assert "R14" not in codes(findings)

    def test_unrelated_time_attribute_is_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def fmt(event):
                return event.time()
            """,
        )
        assert "R14" not in codes(findings)


class TestR15CoreConcurrencyBan:
    def test_flags_threading_import_in_core(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            import threading

            LOCK = threading.Lock()
            """,
        )
        assert codes(findings) == ["R15"]

    def test_flags_aliased_asyncio_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            import asyncio as aio

            def pump():
                return aio.new_event_loop()
            """,
        )
        assert codes(findings) == ["R15"]

    def test_flags_from_import(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from threading import RLock

            LOCK = RLock()
            """,
        )
        assert codes(findings) == ["R15"]

    def test_flags_low_level_thread_module(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            import _thread

            def ident():
                return _thread.get_ident()
            """,
        )
        assert codes(findings) == ["R15"]

    def test_concurrency_layer_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/concurrency/mod.py",
            """
            import threading

            LOCK = threading.RLock()
            """,
        )
        assert "R15" not in codes(findings)

    def test_storage_opt_in_is_exempt(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/storage/mod.py",
            """
            import threading

            LOCK = threading.Lock()
            """,
        )
        assert "R15" not in codes(findings)

    def test_unrelated_imports_are_clean(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            from bisect import bisect_left
            from collections import deque
            """,
        )
        assert "R15" not in codes(findings)
