"""Baseline files: recording, subtraction, staleness detection."""

import json
import textwrap

import pytest

from repro.errors import ReproError
from repro.lintkit import lint_paths, load_baseline, write_baseline

from tests.lintkit.conftest import codes

BAD_GEOMETRY = """
def on_boundary(x):
    return x == 0.5
"""


@pytest.fixture
def project(tmp_path):
    mod = tmp_path / "proj" / "repro" / "geometry" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent(BAD_GEOMETRY))
    return tmp_path / "proj", mod


class TestBaselineRoundTrip:
    def test_recorded_findings_are_subtracted(self, project, tmp_path):
        root, _ = project
        baseline = tmp_path / "baseline.json"
        findings = lint_paths([root])
        assert codes(findings) == ["R1"]
        write_baseline(baseline, findings)
        assert lint_paths([root], baseline_path=baseline) == []

    def test_baseline_is_versioned_json(self, project, tmp_path):
        root, _ = project
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([root]))
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        entry = payload["entries"][0]
        assert entry["code"] == "R1"
        assert "line" not in entry  # fingerprints survive unrelated edits

    def test_new_finding_still_surfaces(self, project, tmp_path):
        root, mod = project
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([root]))
        mod.write_text(
            mod.read_text() + "\n\ndef worse(y):\n    return y != 0.25\n"
        )
        remaining = lint_paths([root], baseline_path=baseline)
        assert codes(remaining) == ["R1"]
        assert remaining[0].line >= 5

    def test_fixed_finding_turns_stale(self, project, tmp_path):
        root, mod = project
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([root]))
        mod.write_text("def on_boundary(x):\n    return x > 0.5\n")
        remaining = lint_paths([root], baseline_path=baseline)
        assert codes(remaining) == ["B1"]
        assert "baseline" in remaining[0].message

    def test_empty_baseline_changes_nothing(self, project, tmp_path):
        root, _ = project
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [])
        assert codes(lint_paths([root], baseline_path=baseline)) == ["R1"]


class TestBaselineErrors:
    def test_missing_baseline_file_raises(self, project, tmp_path):
        root, _ = project
        with pytest.raises(ReproError):
            lint_paths([root], baseline_path=tmp_path / "absent.json")

    def test_corrupt_baseline_raises(self, project, tmp_path):
        root, _ = project
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("not json at all")
        with pytest.raises(ReproError):
            lint_paths([root], baseline_path=corrupt)

    def test_load_baseline_counts_duplicates(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        entry = {"path": "a.py", "code": "R1", "message": "m"}
        baseline.write_text(
            json.dumps({"version": 1, "entries": [entry, entry]})
        )
        counts = load_baseline(baseline)
        assert counts[("a.py", "R1", "m")] == 2
