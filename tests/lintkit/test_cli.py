"""Exit codes and output formats of the lint CLI, and the repro dispatch."""

import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.lintkit.cli import main as lint_main

BAD_GEOMETRY = """
def on_boundary(x):
    return x == 0.5
"""

CLEAN_MODULE = """
def on_boundary(x, cell):
    return cell == 3
"""


@pytest.fixture
def bad_root(tmp_path):
    mod = tmp_path / "bad" / "repro" / "geometry" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent(BAD_GEOMETRY))
    return tmp_path / "bad"


@pytest.fixture
def clean_root(tmp_path):
    mod = tmp_path / "clean" / "repro" / "geometry" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent(CLEAN_MODULE))
    return tmp_path / "clean"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_root, capsys):
        assert lint_main([str(clean_root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_root, capsys):
        assert lint_main([str(bad_root)]) == 1
        out = capsys.readouterr().out
        assert "R1" in out and "error" in out

    def test_no_paths_is_usage_error(self, capsys):
        assert lint_main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_code_is_usage_error(self, clean_root, capsys):
        assert lint_main([str(clean_root), "--select", "R999"]) == 2
        assert "R999" in capsys.readouterr().err

    def test_syntax_error_reports_p0(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def (:\n")
        assert lint_main([str(broken)]) == 1
        assert "P0" in capsys.readouterr().out


class TestOutputAndFilters:
    def test_json_format_is_parseable(self, bad_root, capsys):
        assert lint_main([str(bad_root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "R1"
        assert finding["path"].endswith("mod.py")
        assert finding["line"] == 3

    def test_select_keeps_only_named_codes(self, bad_root, capsys):
        assert lint_main([str(bad_root), "--select", "R3"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_drops_named_codes(self, bad_root, capsys):
        assert lint_main([str(bad_root), "--ignore", "R1"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules_covers_catalogue(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"]:
            assert code in out
        assert "P0" in out and "B1" in out

    def test_text_output_names_file_and_hint(self, bad_root, capsys):
        lint_main([str(bad_root)])
        out = capsys.readouterr().out
        assert "mod.py:3" in out
        assert "fix:" in out


class TestBaselineFlags:
    def test_write_then_apply_baseline(self, bad_root, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad_root), "--write-baseline", str(baseline)]) == 0
        assert "1 finding(s)" in capsys.readouterr().out
        assert lint_main([str(bad_root), "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_stale_baseline_fails_the_gate(self, clean_root, bad_root, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        lint_main([str(bad_root), "--write-baseline", str(baseline)])
        capsys.readouterr()
        assert lint_main([str(clean_root), "--baseline", str(baseline)]) == 1
        assert "B1" in capsys.readouterr().out


class TestReproDispatch:
    def test_repro_lint_subcommand(self, clean_root, capsys):
        assert repro_main(["lint", str(clean_root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_lint_propagates_failure(self, bad_root, capsys):
        assert repro_main(["lint", str(bad_root)]) == 1
        assert "R1" in capsys.readouterr().out

    def test_repro_lint_forwards_leading_options(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "R9" in capsys.readouterr().out
