"""Inline suppression behaviour: matching, R9 rot detection, parsing."""

from repro.lintkit import scan_suppressions

from tests.lintkit.conftest import codes


class TestSuppressionMatching:
    def test_used_suppression_silences_finding(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            def on_boundary(x):
                return x == 0.5  # lint: ignore[R1] -- grid-aligned constant
            """,
        )
        assert findings == []

    def test_one_comment_covers_all_same_line_findings(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            def same(a, b):
                return a.lows == b.lows and a.highs == b.highs  # lint: ignore[R1] -- identity
            """,
        )
        assert findings == []

    def test_suppression_on_wrong_line_does_not_match(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            # lint: ignore[R1] -- wishful thinking, wrong line
            def on_boundary(x):
                return x == 0.5
            """,
        )
        assert sorted(codes(findings)) == ["R1", "R9"]

    def test_wrong_code_does_not_match(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            """
            def on_boundary(x):
                return x == 0.5  # lint: ignore[R3] -- not a layering issue
            """,
        )
        assert sorted(codes(findings)) == ["R1", "R9"]

    def test_multiple_codes_in_one_comment(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            def narrow(tree, node):
                assert node is not None  # lint: ignore[R7, R1] -- R1 unused here
                return node
            """,
        )
        # R7 is suppressed; the listed-but-unused R1 becomes an R9 finding.
        assert codes(findings) == ["R9"]
        assert "R1" in findings[0].message


class TestUnusedSuppression:
    def test_unused_suppression_is_reported(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            LIMIT = 3  # lint: ignore[R1] -- suppresses nothing
            """,
        )
        assert codes(findings) == ["R9"]

    def test_r9_is_not_self_suppressible(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/core/mod.py",
            """
            LIMIT = 3  # lint: ignore[R9] -- trying to hide the rot check
            """,
        )
        assert codes(findings) == ["R9"]


class TestScanSuppressions:
    def test_marker_in_string_literal_is_ignored(self, lint_snippet):
        _, findings = lint_snippet(
            "proj/repro/geometry/mod.py",
            '''
            MARKER = "# lint: ignore[R1]"

            def on_boundary(x):
                return x == 0.5
            ''',
        )
        assert codes(findings) == ["R1"]

    def test_scan_returns_line_and_codes(self):
        source = "x = 1\ny = 2  # lint: ignore[R3,R5] -- reason\n"
        suppressions = scan_suppressions(source)
        assert list(suppressions) == [2]
        assert suppressions[2].codes == ("R3", "R5")
        assert suppressions[2].unused_codes() == ["R3", "R5"]

    def test_codes_are_case_normalised(self):
        source = "y = 2  # lint: ignore[r3] -- lower case\n"
        suppressions = scan_suppressions(source)
        assert suppressions[1].codes == ("R3",)
