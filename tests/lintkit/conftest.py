"""Fixtures for linting synthetic source snippets.

The domain rules scope themselves by path (``repro/geometry/``,
``repro/core/``, ``__init__.py`` …), so each snippet is written to a
path that mimics the library layout under ``tmp_path`` before linting.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lintkit import lint_file


@pytest.fixture
def lint_snippet(tmp_path):
    """Write ``source`` at ``relpath`` under tmp_path and lint it."""

    def run(relpath: str, source: str):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        return target, lint_file(target)

    return run


def codes(findings) -> list[str]:
    """The rule codes of a findings list, in order."""
    return [f.code for f in findings]
