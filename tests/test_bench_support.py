"""Tests for the shared benchmark harness and table rendering."""

import pytest

from repro.errors import ReproError
from repro.bench.harness import (
    INDEX_KINDS,
    build_index,
    index_occupancies,
    occupancy_summary,
    search_cost,
)
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import uniform


class TestBuildIndex:
    def test_all_kinds_build(self, unit2):
        points = list(uniform(300, 2, seed=50))
        for kind in INDEX_KINDS:
            index = build_index(kind, unit2, points, data_capacity=8, fanout=8)
            assert len(index) == len(set(points))
            assert search_cost(index, points[0]) == index.height + 1

    def test_unknown_kind(self, unit2):
        with pytest.raises(ReproError):
            build_index("btree2000", unit2, [])

    def test_occupancies_for_all_kinds(self, unit2):
        points = list(uniform(300, 2, seed=51))
        for kind in INDEX_KINDS:
            index = build_index(kind, unit2, points, data_capacity=8, fanout=8)
            data, idx = index_occupancies(index)
            assert sum(data) >= len(set(points))


class TestOccupancySummary:
    def test_basic(self):
        summary = occupancy_summary([2, 4, 6], capacity=8)
        assert summary.count == 3
        assert summary.minimum == 2
        assert summary.mean == pytest.approx(4.0)
        assert summary.fill_min == pytest.approx(0.25)
        assert summary.fill_mean == pytest.approx(0.5)

    def test_empty(self):
        summary = occupancy_summary([], capacity=8)
        assert summary.count == 0
        assert summary.fill_mean == 0.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text
        assert "0.123456" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestErrorsHierarchy:
    def test_everything_is_reproerror(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_catchable_from_public_api(self, unit2):
        from repro import BVTree, KeyNotFoundError, ReproError

        tree = BVTree(unit2)
        with pytest.raises(ReproError):
            tree.get((0.1, 0.1))
        with pytest.raises(KeyNotFoundError):
            tree.get((0.1, 0.1))
