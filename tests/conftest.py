"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace


@pytest.fixture
def unit2() -> DataSpace:
    """The unit square at 16-bit resolution."""
    return DataSpace.unit(2, resolution=16)


@pytest.fixture
def unit3() -> DataSpace:
    """The unit cube at 16-bit resolution."""
    return DataSpace.unit(3, resolution=16)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(0xBEEF)


@pytest.fixture
def small_tree(unit2: DataSpace) -> BVTree:
    """A small-capacity BV-tree (P=4, F=4) that splits early and often."""
    return BVTree(unit2, data_capacity=4, fanout=4)


@pytest.fixture
def loaded_tree(unit2: DataSpace, rng: random.Random) -> BVTree:
    """A BV-tree pre-loaded with 600 uniform points (values = indexes)."""
    tree = BVTree(unit2, data_capacity=6, fanout=6)
    for i in range(600):
        tree.insert((rng.random(), rng.random()), i, replace=True)
    return tree


def make_points(n: int, ndim: int, seed: int = 7) -> list[tuple[float, ...]]:
    """Deterministic uniform points (plain helper, not a fixture)."""
    r = random.Random(seed)
    return [tuple(r.random() for _ in range(ndim)) for _ in range(n)]
