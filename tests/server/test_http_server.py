"""End-to-end tests over a real socket: ServerHandle + WriteBatcher.

The contract lives in :mod:`tests.server.test_app_contract`; this file
only pins what the transport adds — HTTP framing, keep-alive, the
malformed-request guard, and group-commit coalescing of concurrent
write requests through the batcher.
"""

import http.client
import json
import socket
import threading

import pytest

from repro.concurrency import build_service
from repro.server.app import ServingApp
from repro.server.batch import WriteBatcher
from repro.server.http import ServerHandle


@pytest.fixture()
def served():
    """A running server (with batcher) plus its app, torn down cleanly."""
    service, _ = build_service()
    batcher = WriteBatcher(service, max_batch=32, max_wait_s=0.005)
    app = ServingApp(service, batcher=batcher)
    handle = ServerHandle(app).start()
    try:
        yield handle, app
    finally:
        handle.stop()
        batcher.close()
        service.detach()


def request(handle, method, path, payload=None):
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHttpRoundTrips:
    def test_insert_get_delete_over_the_wire(self, served):
        handle, _ = served
        status, payload = request(
            handle, "POST", "/v1/insert", {"point": [0.5, 0.5], "value": "v"}
        )
        assert (status, payload["lsn"]) == (201, 1)
        status, payload = request(
            handle, "POST", "/v1/get", {"point": [0.5, 0.5]}
        )
        assert (status, payload["value"]) == (200, "v")
        status, _ = request(handle, "POST", "/v1/delete", {"point": [0.5, 0.5]})
        assert status == 200
        status, _ = request(handle, "POST", "/v1/get", {"point": [0.5, 0.5]})
        assert status == 404

    def test_health_and_metrics_endpoints(self, served):
        handle, _ = served
        status, payload = request(handle, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=10
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain"
            )
            assert b"serve_health_requests" in response.read().replace(
                b".", b"_"
            )
        finally:
            conn.close()

    def test_keep_alive_reuses_one_connection(self, served):
        handle, _ = served
        conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=10
        )
        try:
            for i in range(5):
                conn.request(
                    "POST",
                    "/v1/insert",
                    body=json.dumps(
                        {"point": [i / 8 + 1 / 16, 0.5], "value": i}
                    ),
                )
                response = conn.getresponse()
                assert response.status == 201
                assert (
                    response.getheader("Connection") == "keep-alive"
                )
                response.read()
        finally:
            conn.close()
        status, payload = request(handle, "GET", "/stats")
        assert (status, payload["records"]) == (200, 5)

    def test_connection_close_is_honoured(self, served):
        handle, _ = served
        conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=10
        )
        try:
            conn.request(
                "GET", "/health", headers={"Connection": "close"}
            )
            response = conn.getresponse()
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            conn.close()


class TestMalformedRequests:
    def test_garbage_request_line_gets_400(self, served):
        handle, _ = served
        with socket.create_connection(
            (handle.host, handle.port), timeout=10
        ) as sock:
            sock.sendall(b"NOT A VALID REQUEST\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_is_rejected(self, served):
        handle, _ = served
        with socket.create_connection(
            (handle.host, handle.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/insert HTTP/1.1\r\n"
                b"Content-Length: 999999999999\r\n\r\n"
            )
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")


class TestBatcherCoalescing:
    def test_concurrent_writes_coalesce_into_group_commits(self, served):
        handle, app = served
        n_threads, per_thread = 8, 10
        errors = []

        def worker(tid):
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=10
            )
            try:
                for i in range(per_thread):
                    point = [
                        tid / 16 + 1 / 32,
                        i / 16 + 1 / 32,
                    ]
                    conn.request(
                        "POST",
                        "/v1/insert",
                        body=json.dumps({"point": point, "value": tid}),
                    )
                    response = conn.getresponse()
                    if response.status != 201:
                        errors.append((tid, i, response.status))
                    response.read()
            finally:
                conn.close()

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        stats = app.batcher.stats
        assert stats.requests == n_threads * per_thread
        assert stats.ops == n_threads * per_thread
        # Coalescing happened: fewer publications than requests (the
        # exact grouping is timing-dependent; any grouping at all means
        # at least one multi-request batch landed).
        assert stats.batches <= stats.requests
        assert stats.max_batch_seen >= 1
        # Every write is visible and the final LSN equals batch count.
        status, payload = request(handle, "GET", "/stats")
        assert payload["records"] == n_threads * per_thread
        assert payload["lsn"] == stats.batches
        # /stats surfaces the batcher block when one is attached.
        assert payload["batcher"]["requests"] == stats.requests

    def test_batch_endpoint_bypasses_the_batcher(self, served):
        handle, app = served
        before = app.batcher.stats.requests
        status, payload = request(
            handle,
            "POST",
            "/v1/batch",
            {
                "ops": [
                    {"op": "insert", "point": [0.25, 0.25], "value": 1},
                    {"op": "insert", "point": [0.75, 0.75], "value": 2},
                ]
            },
        )
        assert (status, payload["applied"]) == (200, 2)
        assert app.batcher.stats.requests == before
