"""Socket-free contract tests for the serving app.

:meth:`ServingApp.handle` is the whole API surface — the HTTP layer is
a shell around it — so these tests pin the wire contract (status codes,
JSON payload shapes, the error-mapping table from ``app.py``'s
docstring) by calling it directly: no socket, no event loop, no
batcher.
"""

import json

import pytest

from repro.concurrency import build_service
from repro.concurrency.service import BatchAbortedError
from repro.errors import (
    DuplicateKeyError,
    GeometryError,
    KeyNotFoundError,
    ReproError,
    StorageError,
    TreeInvariantError,
)
from repro.obs.metrics import lint_prometheus
from repro.server.app import Response, ServingApp, status_for


def make_app(**kwargs):
    service, _ = build_service()
    return ServingApp(service, **kwargs)


def post(app, path, payload):
    return app.handle("POST", path, json.dumps(payload).encode())


def seeded_app():
    """An app over a service holding a small known grid."""
    app = make_app()
    records = [
        [[i / 4 + 1 / 8, j / 4 + 1 / 8], i * 4 + j]
        for i in range(4)
        for j in range(4)
    ]
    response = post(app, "/v1/bulk", {"records": records})
    assert response.status == 201
    return app, records


class TestStatusForMapping:
    """The docstring's error table, asserted exception-by-exception."""

    @pytest.mark.parametrize(
        ("exc", "status"),
        [
            (KeyNotFoundError("missing"), 404),
            (DuplicateKeyError("dup"), 409),
            (GeometryError("bad box"), 400),
            (TreeInvariantError("broken"), 500),
            (StorageError("poisoned"), 503),
            (ReproError("validation"), 400),
            (ValueError("anything else"), 500),
        ],
    )
    def test_direct_mapping(self, exc, status):
        assert status_for(exc) == status

    def test_batch_abort_maps_its_cause(self):
        exc = BatchAbortedError(2, DuplicateKeyError("dup"))
        assert status_for(exc) == 409

    def test_batch_abort_never_surfaces_404(self):
        """A rejected batch is the request's fault, not a missing
        resource — the 404 cause degrades to 400."""
        exc = BatchAbortedError(1, KeyNotFoundError("missing"))
        assert status_for(exc) == 400


class TestDispatch:
    def test_unknown_path_is_404(self):
        response = make_app().handle("POST", "/v1/nope", b"{}")
        assert response.status == 404
        assert "no route" in response.payload["error"]

    def test_wrong_method_on_known_path_is_405(self):
        response = make_app().handle("GET", "/v1/get", None)
        assert response.status == 405
        response = make_app().handle("POST", "/health", b"{}")
        assert response.status == 405

    def test_malformed_json_body_is_400(self):
        response = make_app().handle("POST", "/v1/get", b"{not json")
        assert response.status == 400
        assert response.payload["kind"] == "ReproError"

    def test_non_object_json_body_is_400(self):
        response = make_app().handle("POST", "/v1/get", b"[1, 2]")
        assert response.status == 400

    def test_handle_never_raises(self):
        app = make_app()
        for method, path, body in [
            ("POST", "/v1/insert", b"\xff\xfe"),
            ("POST", "/v1/knn", b'{"point": "oops"}'),
            ("DELETE", "/v1/get", None),
            ("POST", "/v1/range", b'{"lows": []}'),
        ]:
            response = app.handle(method, path, body)
            assert isinstance(response, Response)
            assert 400 <= response.status < 600

    def test_json_responses_serialize(self):
        app, _ = seeded_app()
        response = post(app, "/v1/get", {"point": [1 / 8, 1 / 8]})
        body = response.body_bytes()
        assert body.endswith(b"\n")
        assert json.loads(body) == response.payload


class TestPointValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"point": []},
            {"point": "0.5,0.5"},
            {"point": [0.5, "x"]},
            {"point": [True, False]},
        ],
    )
    def test_bad_point_is_400(self, payload):
        response = post(make_app(), "/v1/get", payload)
        assert response.status == 400
        assert "point" in response.payload["error"]

    def test_out_of_space_point_maps_geometry_to_400(self):
        response = post(make_app(), "/v1/insert", {"point": [2.0, 2.0]})
        assert response.status == 400


class TestGet:
    def test_hit_carries_value_and_lsn(self):
        app, records = seeded_app()
        point, value = records[5]
        response = post(app, "/v1/get", {"point": point})
        assert response.status == 200
        assert response.payload == {
            "point": point,
            "value": value,
            "lsn": 1,
        }

    def test_miss_is_404_with_snapshot_lsn(self):
        app, _ = seeded_app()
        response = post(app, "/v1/get", {"point": [0.01, 0.01]})
        assert response.status == 404
        assert response.payload["kind"] == "KeyNotFoundError"
        assert response.payload["lsn"] == 1


class TestInsertDelete:
    def test_insert_is_201_and_bumps_lsn(self):
        app = make_app()
        response = post(
            app, "/v1/insert", {"point": [0.5, 0.5], "value": "v"}
        )
        assert response.status == 201
        assert response.payload == {"point": [0.5, 0.5], "lsn": 1}
        assert post(app, "/v1/get", {"point": [0.5, 0.5]}).payload[
            "value"
        ] == "v"

    def test_duplicate_insert_is_409(self):
        app = make_app()
        post(app, "/v1/insert", {"point": [0.5, 0.5], "value": 1})
        response = post(app, "/v1/insert", {"point": [0.5, 0.5], "value": 2})
        assert response.status == 409
        assert response.payload["kind"] == "DuplicateKeyError"

    def test_replace_insert_is_201(self):
        app = make_app()
        post(app, "/v1/insert", {"point": [0.5, 0.5], "value": 1})
        response = post(
            app,
            "/v1/insert",
            {"point": [0.5, 0.5], "value": 2, "replace": True},
        )
        assert response.status == 201
        assert post(app, "/v1/get", {"point": [0.5, 0.5]}).payload[
            "value"
        ] == 2

    def test_delete_returns_the_removed_value(self):
        app, records = seeded_app()
        point, value = records[0]
        response = post(app, "/v1/delete", {"point": point})
        assert response.status == 200
        assert response.payload == {"point": point, "value": value, "lsn": 2}
        assert post(app, "/v1/get", {"point": point}).status == 404

    def test_delete_of_missing_point_is_404(self):
        response = post(make_app(), "/v1/delete", {"point": [0.5, 0.5]})
        assert response.status == 404


class TestRange:
    def test_payload_shape(self):
        app, records = seeded_app()
        response = post(
            app, "/v1/range", {"lows": [0.0, 0.0], "highs": [0.3, 0.3]}
        )
        assert response.status == 200
        payload = response.payload
        assert payload["count"] == len(payload["records"])
        assert payload["pages_visited"] >= 1
        assert payload["lsn"] == 1
        expected = {
            (tuple(p), v)
            for p, v in records
            if p[0] <= 0.3 and p[1] <= 0.3
        }
        got = {
            (tuple(r["point"]), r["value"]) for r in payload["records"]
        }
        assert got == expected

    def test_missing_bound_is_400(self):
        response = post(make_app(), "/v1/range", {"lows": [0.0, 0.0]})
        assert response.status == 400


class TestKnn:
    def test_payload_shape_and_ordering(self):
        app, _ = seeded_app()
        response = post(app, "/v1/knn", {"point": [1 / 8, 1 / 8], "k": 3})
        assert response.status == 200
        neighbours = response.payload["neighbours"]
        assert len(neighbours) == 3
        assert neighbours[0]["point"] == [1 / 8, 1 / 8]
        assert neighbours[0]["distance"] == 0.0
        distances = [n["distance"] for n in neighbours]
        assert distances == sorted(distances)
        assert response.payload["lsn"] == 1

    @pytest.mark.parametrize("k", [0, -1, 1.5, True, "three"])
    def test_bad_k_is_400(self, k):
        app, _ = seeded_app()
        response = post(app, "/v1/knn", {"point": [0.5, 0.5], "k": k})
        assert response.status == 400


class TestBatch:
    def test_success_is_one_publication(self):
        app = make_app()
        response = post(
            app,
            "/v1/batch",
            {
                "ops": [
                    {"op": "insert", "point": [0.25, 0.25], "value": 1},
                    {"op": "insert", "point": [0.75, 0.75], "value": 2},
                    {"op": "delete", "point": [0.25, 0.25]},
                ]
            },
        )
        assert response.status == 200
        assert response.payload == {"applied": 3, "lsn": 1}

    def test_abort_is_all_or_nothing(self):
        app = make_app()
        response = post(
            app,
            "/v1/batch",
            {
                "ops": [
                    {"op": "insert", "point": [0.25, 0.25], "value": 1},
                    {"op": "delete", "point": [0.75, 0.75]},
                ]
            },
        )
        # The 404 cause degrades to 400 and names the failing index.
        assert response.status == 400
        assert response.payload["kind"] == "BatchAbortedError"
        assert response.payload["index"] == 1
        assert response.payload["cause"] == "KeyNotFoundError"
        # Nothing from the batch is visible: op 0 never landed.
        assert post(app, "/v1/get", {"point": [0.25, 0.25]}).status == 404
        assert app.service.stats()["lsn"] == 0

    def test_abort_on_duplicate_keeps_409(self):
        app = make_app()
        post(app, "/v1/insert", {"point": [0.5, 0.5], "value": 1})
        response = post(
            app,
            "/v1/batch",
            {
                "ops": [
                    {"op": "insert", "point": [0.25, 0.25], "value": 1},
                    {"op": "insert", "point": [0.5, 0.5], "value": 2},
                ]
            },
        )
        assert response.status == 409
        assert response.payload["index"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"ops": []},
            {"ops": ["insert"]},
            {"ops": [{"op": "upsert", "point": [0.5, 0.5]}]},
        ],
    )
    def test_malformed_ops_are_400(self, payload):
        response = post(make_app(), "/v1/batch", payload)
        assert response.status == 400


class TestBulk:
    def test_bulk_load_is_201(self):
        app = make_app()
        response = post(
            app,
            "/v1/bulk",
            {"records": [[[0.25, 0.25], "a"], [[0.75, 0.75], "b"]]},
        )
        assert response.status == 201
        assert response.payload == {"loaded": 2, "lsn": 1}

    @pytest.mark.parametrize(
        "payload",
        [{}, {"records": []}, {"records": [[[0.5, 0.5]]]}],
    )
    def test_malformed_records_are_400(self, payload):
        response = post(make_app(), "/v1/bulk", payload)
        assert response.status == 400


class TestHealthStatsMetrics:
    def test_health_ok(self):
        app, records = seeded_app()
        response = app.handle("GET", "/health", None)
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["records"] == len(records)
        assert response.payload["lsn"] == 1

    def test_health_poisoned_is_503(self, monkeypatch):
        app = make_app()
        post(app, "/v1/insert", {"point": [0.5, 0.5], "value": 1})

        # Poison the writer: fail the inner store mid-write so the
        # dirty delta is non-empty when the exception lands.
        inner = app.service.tree.store.inner
        original = inner.write

        def torn_write(page_id, page):
            original(page_id, page)
            raise OSError("disk went away")

        monkeypatch.setattr(inner, "write", torn_write)
        # The torn write itself surfaces as the raw failure (500)...
        response = post(app, "/v1/insert", {"point": [0.25, 0.25]})
        assert response.status == 500
        assert response.payload["kind"] == "OSError"
        monkeypatch.undo()

        # ...and every write after it hits the poison guard: 503.
        response = post(app, "/v1/insert", {"point": [0.75, 0.75]})
        assert response.status == 503
        assert response.payload["kind"] == "StorageError"

        response = app.handle("GET", "/health", None)
        assert response.status == 503
        assert response.payload["status"] == "poisoned"
        # The last published version keeps serving.
        assert post(app, "/v1/get", {"point": [0.5, 0.5]}).status == 200

    def test_stats_shape(self):
        app, _ = seeded_app()
        response = app.handle("GET", "/stats", None)
        assert response.status == 200
        for key in ("lsn", "records", "height", "commits", "poisoned"):
            assert key in response.payload
        assert "batcher" not in response.payload  # no batcher attached

    def test_metrics_pass_the_prometheus_linter(self):
        app, records = seeded_app()
        post(app, "/v1/get", {"point": records[0][0]})
        post(app, "/v1/get", {"point": [0.01, 0.01]})
        post(app, "/v1/knn", {"point": [0.5, 0.5], "k": 2})
        post(app, "/v1/range", {"lows": [0.0, 0.0], "highs": [1.0, 1.0]})
        response = app.handle("GET", "/metrics", None)
        assert response.status == 200
        assert response.content_type == "text/plain; version=0.0.4"
        text = response.payload
        assert lint_prometheus(text) == []
        assert "serve_get_requests" in text.replace(".", "_")

    def test_per_endpoint_counters_track_requests_and_errors(self):
        app, records = seeded_app()
        post(app, "/v1/get", {"point": records[0][0]})
        post(app, "/v1/get", {"point": records[1][0]})
        post(app, "/v1/get", {"point": [0.01, 0.01]})  # 404: an error
        registry = app.registry.snapshot()
        assert registry["serve.get.requests"]["value"] == 3
        # A get miss is part of the contract, not an app error — the
        # errors counter stays untouched by 404s.
        assert registry["serve.get.errors"]["value"] == 0
        assert registry["serve.get.latency_us"]["count"] == 3
        # A real error (malformed point) does count.
        post(app, "/v1/get", {"point": []})
        assert app.registry.snapshot()["serve.get.errors"]["value"] == 1
