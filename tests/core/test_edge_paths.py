"""Edge-path coverage: error branches and rarely-hit plumbing."""

import pytest

from repro.errors import TreeInvariantError
from repro.core.descent import find_owner, locate
from repro.core.entry import Entry
from repro.core.query import QueryResult
from repro.core.tree import BVTree
from repro.geometry.region import RegionKey
from tests.conftest import make_points


class TestFindOwnerEdges:
    def test_detached_entry_raises(self, loaded_tree):
        stray = Entry(RegionKey.from_bits("10101010"), 0, 999_999)
        with pytest.raises(TreeInvariantError):
            find_owner(loaded_tree, stray)

    def test_root_virtual_entry(self, loaded_tree):
        assert find_owner(loaded_tree, loaded_tree.root_entry()) is None


class TestRegistryEdges:
    def test_double_register_rejected(self, small_tree):
        entry = Entry(RegionKey.from_bits("01"), 0, 1)
        small_tree.register_entry(entry)
        with pytest.raises(TreeInvariantError):
            small_tree.register_entry(Entry(RegionKey.from_bits("01"), 0, 2))

    def test_unregister_unknown_rejected(self, small_tree):
        with pytest.raises(TreeInvariantError):
            small_tree.unregister_entry(Entry(RegionKey.from_bits("0"), 0, 1))

    def test_unregister_wrong_object_rejected(self, small_tree):
        entry = Entry(RegionKey.from_bits("01"), 0, 1)
        small_tree.register_entry(entry)
        impostor = Entry(RegionKey.from_bits("01"), 0, 1)
        with pytest.raises(TreeInvariantError):
            small_tree.unregister_entry(impostor)

    def test_registered_lookup(self, small_tree):
        entry = Entry(RegionKey.from_bits("01"), 0, 1)
        small_tree.register_entry(entry)
        assert small_tree.registered(0, RegionKey.from_bits("01")) is entry
        assert small_tree.registered(1, RegionKey.from_bits("01")) is None


class TestQueryResultHelpers:
    def test_points_and_len(self):
        result = QueryResult(records=[((0.1, 0.2), "a"), ((0.3, 0.4), "b")])
        assert result.points() == [(0.1, 0.2), (0.3, 0.4)]
        assert len(result) == 2


class TestLocateOnDeepTrees:
    def test_owner_page_reported(self, loaded_tree):
        point, _ = next(iter(loaded_tree.items()))
        found = locate(loaded_tree, loaded_tree.space.point_path(point))
        assert found.owner_page is not None
        owner = loaded_tree.store.read(found.owner_page)
        assert any(e is found.entry for e in owner.entries)

    def test_deferred_split_statistics_accessible(self, unit2):
        # The uniform tiny-F corner can defer splits; the counter is part
        # of the public stats surface either way.
        tree = BVTree(unit2, data_capacity=4, fanout=4, policy="uniform")
        for i, p in enumerate(make_points(600, 2, seed=200)):
            tree.insert(p, i, replace=True)
        assert tree.stats.deferred_splits >= 0
        tree.check(sample_points=30, check_occupancy=False)
