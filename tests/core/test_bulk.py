"""Tests for bottom-up bulk loading."""

import random

import pytest

from repro.errors import DuplicateKeyError, ReproError
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from tests.conftest import make_points


def build_pair(space, points, data_capacity=6, fanout=6):
    """The same records loaded incrementally and in bulk."""
    records = [(p, i) for i, p in enumerate(points)]
    incremental = BVTree(space, data_capacity=data_capacity, fanout=fanout)
    for point, value in records:
        incremental.insert(point, value, replace=True)
    bulk = BVTree(space, data_capacity=data_capacity, fanout=fanout)
    bulk.bulk_load(records, replace=True)
    return incremental, bulk


class TestBulkLoadBasics:
    def test_count_and_lookup(self, unit2):
        points = make_points(500, 2, seed=3)
        tree = BVTree(unit2, data_capacity=8, fanout=8)
        loaded = tree.bulk_load([(p, i) for i, p in enumerate(points)])
        assert loaded == len(points) == tree.count
        for i, p in enumerate(points):
            assert tree.get(p) == i
            assert tree.get_fast(p) == i

    def test_empty_input(self, unit2):
        tree = BVTree(unit2)
        assert tree.bulk_load([]) == 0
        assert tree.count == 0
        assert len(tree.range_query((0.0, 0.0), (1.0, 1.0))) == 0

    def test_small_input_stays_in_root(self, unit2):
        tree = BVTree(unit2, data_capacity=8, fanout=8)
        tree.bulk_load([((0.1 * i, 0.2), i) for i in range(5)])
        assert tree.height == 0
        assert tree.stats.data_splits == 0
        tree.check(check_owners=True)

    def test_accepts_iterator_input(self, unit2):
        tree = BVTree(unit2, data_capacity=8, fanout=8)
        records = (((i / 64, (i * 7 % 64) / 64), i) for i in range(64))
        assert tree.bulk_load(records) == 64

    def test_invariants_hold(self, unit2):
        tree = BVTree(unit2, data_capacity=6, fanout=6)
        tree.bulk_load([(p, i) for i, p in enumerate(make_points(1200, 2))])
        tree.check(check_owners=True, sample_points=200)

    def test_occupancy_guarantee(self, unit2):
        tree = BVTree(unit2, data_capacity=9, fanout=9)
        tree.bulk_load([(p, i) for i, p in enumerate(make_points(2000, 2))])
        stats = tree.tree_stats()
        assert stats.min_data_occupancy >= tree.policy.min_data_occupancy()

    def test_three_dimensional(self, unit3):
        incremental, bulk = build_pair(unit3, make_points(700, 3, seed=9))
        bulk.check(check_owners=True)
        assert bulk.count == incremental.count


class TestBulkLoadContract:
    def test_rejects_nonempty_tree(self, unit2):
        tree = BVTree(unit2)
        tree.insert((0.5, 0.5), "x")
        with pytest.raises(ReproError):
            tree.bulk_load([((0.1, 0.1), "y")])

    def test_duplicate_paths_raise_without_replace(self, unit2):
        tree = BVTree(unit2)
        with pytest.raises(DuplicateKeyError):
            tree.bulk_load([((0.5, 0.5), "a"), ((0.5, 0.5), "b")])

    def test_replace_keeps_last_record_in_input_order(self, unit2):
        tree = BVTree(unit2)
        tree.bulk_load(
            [((0.5, 0.5), "a"), ((0.25, 0.25), "m"), ((0.5, 0.5), "b")],
            replace=True,
        )
        assert tree.count == 2
        assert tree.get((0.5, 0.5)) == "b"

    def test_usable_after_clear(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        points = make_points(300, 2, seed=5)
        tree.bulk_load([(p, i) for i, p in enumerate(points)])
        tree.clear()
        assert tree.bulk_load([(p, i) for i, p in enumerate(points)]) == len(
            points
        )
        tree.check(check_owners=True)

    def test_counters(self, unit2):
        tree = BVTree(unit2, data_capacity=6, fanout=6)
        tree.bulk_load([(p, i) for i, p in enumerate(make_points(400, 2))])
        assert tree.stats.bulk_loaded == 400
        assert tree.stats.inserts == 0
        assert tree.stats.data_splits > 0


class TestBulkMatchesIncremental:
    def test_query_equivalence(self, unit2):
        incremental, bulk = build_pair(unit2, make_points(900, 2, seed=13))
        rng = random.Random(17)
        for _ in range(30):
            lows = tuple(rng.uniform(0, 0.8) for _ in range(2))
            highs = tuple(lo + rng.uniform(0.05, 0.25) for lo in lows)
            a = incremental.range_query(lows, highs)
            b = bulk.range_query(lows, highs)
            assert sorted(a.records) == sorted(b.records)

    def test_knn_equivalence(self, unit2):
        incremental, bulk = build_pair(unit2, make_points(600, 2, seed=23))
        rng = random.Random(29)
        for _ in range(20):
            q = (rng.random(), rng.random())
            a = incremental.nearest(q, k=7)
            b = bulk.nearest(q, k=7)
            assert [n.distance for n in a.neighbours] == [
                n.distance for n in b.neighbours
            ]

    def test_deletion_after_bulk_load(self, unit2):
        points = make_points(400, 2, seed=31)
        tree = BVTree(unit2, data_capacity=6, fanout=6)
        tree.bulk_load([(p, i) for i, p in enumerate(points)])
        rng = random.Random(37)
        rng.shuffle(points)
        for p in points[:200]:
            tree.delete(p)
        tree.check(check_owners=True)
        assert tree.count == 200


class TestClearAccounting:
    def test_clear_charges_no_reads(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        tree.bulk_load([(p, i) for i, p in enumerate(make_points(300, 2))])
        reads_before = tree.store.stats.reads
        tree.clear()
        assert tree.store.stats.reads == reads_before
        assert tree.count == 0
