"""Tests for the §8 spatial-object extension."""

import random

import pytest

from repro.errors import GeometryError, KeyNotFoundError
from repro.core.spatial import SpatialIndex
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace


@pytest.fixture
def index(unit2):
    return SpatialIndex(unit2, max_depth=16)


def random_rects(n, rng, max_side=0.2):
    out = []
    for _ in range(n):
        lows = (rng.uniform(0, 0.8), rng.uniform(0, 0.8))
        sides = (rng.uniform(0.001, max_side), rng.uniform(0.001, max_side))
        out.append(Rect(lows, (lows[0] + sides[0], lows[1] + sides[1])))
    return out


class TestEnclosingBlock:
    def test_tiny_rect_gets_deep_block(self, index):
        block = index.enclosing_block(Rect((0.1, 0.1), (0.1001, 0.1001)))
        assert block.nbits > 8

    def test_rect_straddling_centre_gets_root(self, index):
        block = index.enclosing_block(Rect((0.4, 0.4), (0.6, 0.6)))
        assert block.nbits == 0

    def test_block_contains_rect(self, index, rng):
        for rect in random_rects(50, rng):
            block = index.enclosing_block(rect)
            assert index.space.key_rect(block).contains_rect(rect)

    def test_objects_never_split(self, index, rng):
        # The point of the representation (§1's critique of R+/Z-order).
        for rect in random_rects(50, rng):
            block = index.enclosing_block(rect)
            block_rect = index.space.key_rect(block)
            assert block_rect.contains_rect(rect)

    def test_rejects_out_of_space(self, index):
        with pytest.raises(GeometryError):
            index.enclosing_block(Rect((0.5, 0.5), (1.5, 1.5)))

    def test_rejects_dim_mismatch(self, index):
        with pytest.raises(GeometryError):
            index.enclosing_block(Rect((0.1,), (0.2,)))


class TestQueries:
    def test_intersection_matches_brute_force(self, index, rng):
        rects = random_rects(200, rng)
        for i, rect in enumerate(rects):
            index.insert(rect, i)
        for _ in range(20):
            q = random_rects(1, rng, max_side=0.3)[0]
            got = {v for _, v in index.intersecting(q)}
            expected = {i for i, r in enumerate(rects) if r.intersects(q)}
            assert got == expected

    def test_stabbing_query(self, index, rng):
        rects = random_rects(200, rng)
        for i, rect in enumerate(rects):
            index.insert(rect, i)
        for _ in range(20):
            p = (rng.random(), rng.random())
            got = {v for _, v in index.containing_point(p)}
            expected = {i for i, r in enumerate(rects) if r.contains_point(p)}
            assert got == expected

    def test_duplicates_allowed(self, index):
        r = Rect((0.1, 0.1), (0.2, 0.2))
        index.insert(r, "a")
        index.insert(r, "b")
        assert len(index) == 2
        got = sorted(v for _, v in index.intersecting(r))
        assert got == ["a", "b"]


class TestDeletion:
    def test_delete_specific_object(self, index):
        r = Rect((0.1, 0.1), (0.2, 0.2))
        index.insert(r, "a")
        index.insert(r, "b")
        index.delete(r, "a")
        assert [v for _, v in index.intersecting(r)] == ["b"]
        assert len(index) == 1

    def test_delete_missing_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete(Rect((0.1, 0.1), (0.2, 0.2)), "x")

    def test_delete_cleans_trie(self, index, rng):
        rects = random_rects(100, rng)
        for i, rect in enumerate(rects):
            index.insert(rect, i)
        for i, rect in enumerate(rects):
            index.delete(rect, i)
        assert len(index) == 0
        assert index._weights == {}
        assert index._buckets == {}

    def test_insert_delete_interleaved(self, index, rng):
        live = {}
        for step in range(500):
            if live and rng.random() < 0.5:
                key_ = rng.choice(list(live))
                index.delete(*key_)
                del live[key_]
            else:
                rect = random_rects(1, rng)[0]
                index.insert(rect, step)
                live[(rect, step)] = True
        assert len(index) == len(live)
        q = Rect((0.0, 0.0), (1.0, 1.0))
        assert len(list(index.intersecting(q))) == len(live)
