"""Tests that the invariant checker actually catches corruption."""

import pytest

from repro.errors import TreeInvariantError
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import RegionKey
from tests.conftest import make_points


@pytest.fixture
def tree(unit2):
    t = BVTree(unit2, data_capacity=4, fanout=4)
    for i, p in enumerate(make_points(200, 2, seed=51)):
        t.insert(p, i, replace=True)
    t.check(sample_points=20, check_owners=True)
    return t


def first_index_node(tree):
    node = tree.store.read(tree.root_page)
    assert isinstance(node, IndexNode)
    return tree.root_page, node


class TestCorruptionDetection:
    def test_clean_tree_passes(self, tree):
        tree.check(sample_points=50, check_owners=True)

    def test_detects_count_mismatch(self, tree):
        tree.count += 1
        with pytest.raises(TreeInvariantError, match="tree.count"):
            tree.check()

    def test_detects_record_outside_block(self, tree):
        # Find a populated data page whose region key is non-trivial, and
        # move one record just outside its block (flip the key's last bit).
        stack = [tree.root_entry()]
        victim = None
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                if entry.key.nbits > 0 and len(tree.store.read(entry.page)):
                    victim = entry
                    break
                continue
            stack.extend(tree.store.read(entry.page).entries)
        assert victim is not None
        page = tree.store.read(victim.page)
        path = next(iter(page.records))
        flipped = path ^ (
            1 << (tree.space.path_bits - victim.key.nbits)
        )
        page.records[flipped] = page.records.pop(path)
        with pytest.raises(TreeInvariantError):
            tree.check()

    def test_detects_dangling_page(self, tree):
        _, node = first_index_node(tree)
        victim = node.entries[0]
        tree.store.free(victim.page)
        with pytest.raises(TreeInvariantError):
            tree.check()

    def test_detects_double_reference(self, tree):
        page, node = first_index_node(tree)
        fresh = Entry(
            RegionKey.from_bits("1" * tree.space.path_bits),
            node.index_level - 1,
            node.entries[0].page,
        )
        node.entries.append(fresh)
        with pytest.raises(TreeInvariantError):
            tree.check()

    def test_detects_registry_desync(self, tree):
        _, node = first_index_node(tree)
        entry = node.natives()[0]
        tree.unregister_entry(entry)
        with pytest.raises(TreeInvariantError, match="registry"):
            tree.check()

    def test_detects_key_not_extending_node_region(self, tree):
        # Install a deep child whose key escapes the node's region.
        page, node = first_index_node(tree)
        inner_entry = next(e for e in node.natives() if e.key.nbits > 0)
        child = tree.store.read(inner_entry.page)
        if isinstance(child, DataPage):
            pytest.skip("tree too shallow for this corruption")
        foreign_bits = "1" if inner_entry.key.bit_string()[0] == "0" else "0"
        bad = Entry(
            RegionKey.from_bits(foreign_bits * 6),
            child.index_level - 1,
            tree.store.allocate(DataPage()),
        )
        child.entries.append(bad)
        tree.register_entry(bad)
        with pytest.raises(TreeInvariantError):
            tree.check()

    def test_detects_bad_occupancy(self, tree):
        page_id = next(
            pid
            for pid in tree.store.page_ids()
            if isinstance(tree.store.read(pid), DataPage)
            and pid != tree.root_page
            and len(tree.store.read(pid)) > 0
        )
        page = tree.store.read(page_id)
        drained = len(page.records)
        page.records.clear()
        tree.count -= drained
        with pytest.raises(TreeInvariantError):
            tree.check(check_occupancy=True)
        tree.check(check_occupancy=False)

    def test_sampled_relocation(self, tree):
        tree.check(sample_points=1000)  # more samples than records is fine
