"""Tests for k-nearest-neighbour search."""

import math
import random

import pytest

from repro.errors import GeometryError, ReproError
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from tests.conftest import make_points


def brute_knn(points, query, k):
    return sorted(
        points,
        key=lambda p: sum((a - b) ** 2 for a, b in zip(p, query)),
    )[:k]


class TestCorrectness:
    def test_single_nearest(self, loaded_tree):
        points = [p for p, _ in loaded_tree.items()]
        rng = random.Random(101)
        for _ in range(20):
            q = (rng.random(), rng.random())
            result = loaded_tree.nearest(q, k=1)
            expected = brute_knn(points, q, 1)[0]
            assert result.points()[0] == expected

    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_k_nearest_matches_brute_force(self, loaded_tree, k):
        points = [p for p, _ in loaded_tree.items()]
        rng = random.Random(102)
        for _ in range(10):
            q = (rng.random(), rng.random())
            result = loaded_tree.nearest(q, k=k)
            got = result.points()
            expected = brute_knn(points, q, k)
            # Distances must agree (point sets can differ only on ties).
            for a, b in zip(got, expected):
                da = math.dist(a, q)
                db = math.dist(b, q)
                assert da == pytest.approx(db)

    def test_distances_sorted_and_correct(self, loaded_tree):
        q = (0.31, 0.62)
        result = loaded_tree.nearest(q, k=8)
        distances = [n.distance for n in result.neighbours]
        assert distances == sorted(distances)
        for n in result.neighbours:
            assert n.distance == pytest.approx(math.dist(n.point, q))

    def test_values_returned(self, small_tree):
        small_tree.insert((0.5, 0.5), "centre")
        small_tree.insert((0.9, 0.9), "corner")
        result = small_tree.nearest((0.52, 0.52), k=1)
        assert result.neighbours[0].value == "centre"

    def test_k_exceeding_population(self, small_tree):
        small_tree.insert((0.1, 0.1), 1)
        small_tree.insert((0.2, 0.2), 2)
        result = small_tree.nearest((0.0, 0.0), k=10)
        assert len(result) == 2

    def test_empty_tree(self, small_tree):
        assert len(small_tree.nearest((0.5, 0.5), k=3)) == 0

    def test_three_dimensions(self, unit3):
        tree = BVTree(unit3, data_capacity=8, fanout=8)
        points = list(dict.fromkeys(make_points(800, 3, seed=103)))
        for i, p in enumerate(points):
            tree.insert(p, i)
        q = (0.4, 0.5, 0.6)
        got = tree.nearest(q, k=5).points()
        expected = brute_knn(points, q, 5)
        assert [math.dist(p, q) for p in got] == pytest.approx(
            [math.dist(p, q) for p in expected]
        )


class TestEfficiency:
    def test_prunes_most_of_the_tree(self, unit2):
        tree = BVTree(unit2, data_capacity=16, fanout=16)
        for i, p in enumerate(make_points(8000, 2, seed=104)):
            tree.insert(p, i, replace=True)
        total_pages = tree.tree_stats().pages_total
        result = tree.nearest((0.5, 0.5), k=3)
        assert result.pages_visited < total_pages / 5


class TestValidation:
    def test_rejects_bad_k(self, small_tree):
        with pytest.raises(ReproError):
            small_tree.nearest((0.5, 0.5), k=0)

    def test_rejects_dim_mismatch(self, small_tree):
        with pytest.raises(GeometryError):
            small_tree.nearest((0.5,), k=1)
