"""Tests for tree statistics collection."""

from repro.core.stats import OpCounters, collect
from repro.core.tree import BVTree
from tests.conftest import make_points


class TestOpCounters:
    def test_reset(self):
        counters = OpCounters(data_splits=3, promotions=2)
        counters.reset()
        assert counters.data_splits == 0
        assert counters.promotions == 0

    def test_snapshot_is_an_independent_copy(self):
        counters = OpCounters(inserts=4, merges=1)
        snap = counters.snapshot()
        counters.inserts += 3
        assert snap.inserts == 4
        assert snap.merges == 1

    def test_delta_measures_only_the_window(self):
        counters = OpCounters(data_splits=2)
        before = counters.snapshot()
        counters.data_splits += 5
        counters.promotions += 1
        delta = counters.delta(before)
        assert delta.data_splits == 5
        assert delta.promotions == 1
        assert delta.inserts == 0

    def test_delta_across_reset_goes_negative(self):
        counters = OpCounters(demotions=6)
        before = counters.snapshot()
        counters.reset()
        counters.demotions += 1
        assert counters.delta(before).demotions == -5

    def test_to_dict_covers_every_field(self):
        counters = OpCounters(inserts=1, redistributions=2)
        data = counters.to_dict()
        assert data["inserts"] == 1
        assert data["redistributions"] == 2
        assert set(data) == set(OpCounters.__dataclass_fields__)

    def test_live_counts_on_a_real_tree(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        before = tree.stats.snapshot()
        for i, p in enumerate(make_points(300, 2, seed=60)):
            tree.insert(p, i, replace=True)
        delta = tree.stats.delta(before)
        assert delta.inserts == 300
        assert delta.data_splits > 0
        assert delta.to_dict() == tree.stats.delta(before).to_dict()


class TestCollect:
    def test_empty_tree(self, small_tree):
        stats = collect(small_tree)
        assert stats.height == 0
        assert stats.n_points == 0
        assert stats.data_pages == 1
        assert stats.index_nodes == 0
        assert stats.total_guards == 0
        assert stats.pages_total == 1

    def test_counts_match_store(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(500, 2, seed=61)):
            tree.insert(p, i, replace=True)
        stats = collect(tree)
        assert stats.n_points == len(tree)
        assert stats.data_pages + stats.index_nodes == tree.store.live_pages()
        assert sum(stats.index_nodes_by_level.values()) == stats.index_nodes
        assert sum(stats.guards_by_level.values()) == stats.total_guards
        assert sum(stats.data_occupancies) == len(tree)

    def test_occupancy_summaries(self, unit2):
        tree = BVTree(unit2, data_capacity=6, fanout=6)
        for i, p in enumerate(make_points(600, 2, seed=62)):
            tree.insert(p, i, replace=True)
        stats = collect(tree)
        assert stats.min_data_occupancy == min(stats.data_occupancies)
        assert 0.0 < stats.avg_data_occupancy <= 1.0
        assert 0.0 < stats.avg_index_occupancy
        assert stats.min_index_occupancy == min(stats.index_occupancies)

    def test_index_bytes_scaled_policy(self, unit2):
        tree = BVTree(
            unit2, data_capacity=4, fanout=4, policy="scaled", page_bytes=100
        )
        for i, p in enumerate(make_points(500, 2, seed=63)):
            tree.insert(p, i, replace=True)
        stats = collect(tree)
        # Level-x nodes cost 100*x bytes; total must exceed flat pricing
        # whenever any node sits above level 1.
        if any(level > 1 for level in stats.index_nodes_by_level):
            assert stats.index_bytes > stats.index_nodes * 100
        assert stats.data_bytes == stats.data_pages * 100

    def test_index_bytes_uniform_policy(self, unit2):
        tree = BVTree(
            unit2, data_capacity=4, fanout=4, policy="uniform", page_bytes=100
        )
        for i, p in enumerate(make_points(500, 2, seed=63)):
            tree.insert(p, i, replace=True)
        stats = collect(tree)
        assert stats.index_bytes == stats.index_nodes * 100
