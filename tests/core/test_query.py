"""Tests for range and partial-match queries."""

import random

import pytest

from repro.errors import GeometryError
from repro.core.query import range_query_rectpath
from repro.core.tree import BVTree
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace
from tests.conftest import make_points


def brute_range(points, lows, highs):
    return {
        p
        for p in points
        if all(lo <= x < hi for x, lo, hi in zip(p, lows, highs))
    }


class TestRangeQuery:
    def test_matches_brute_force(self, loaded_tree):
        points = {p for p, _ in loaded_tree.items()}
        rng = random.Random(77)
        for _ in range(25):
            lows = tuple(rng.uniform(0, 0.8) for _ in range(2))
            highs = tuple(lo + rng.uniform(0.05, 0.2) for lo in lows)
            result = loaded_tree.range_query(lows, highs)
            assert set(result.points()) == brute_range(points, lows, highs)

    def test_whole_space_returns_everything(self, loaded_tree):
        result = loaded_tree.range_query((0.0, 0.0), (1.0, 1.0))
        assert len(result) == len(loaded_tree)

    def test_empty_region_is_cheap(self, unit2):
        from repro.workloads import clustered

        tree = BVTree(unit2, data_capacity=8, fanout=8)
        for i, p in enumerate(clustered(2000, 2, clusters=2, spread=0.01, seed=1)):
            tree.insert(p, i, replace=True)
        whole = tree.range_query((0.0, 0.0), (1.0, 1.0))
        # A query over empty space touches almost nothing: the region set
        # contracts to the occupied subspaces (§1).
        centre = tree.range_query((0.45, 0.45), (0.55, 0.55))
        if len(centre) == 0:
            assert centre.pages_visited < whole.pages_visited / 4

    def test_dimension_mismatch(self, loaded_tree):
        with pytest.raises(GeometryError):
            loaded_tree.range_query((0.0,), (1.0,))

    def test_result_accessors(self, loaded_tree):
        result = loaded_tree.range_query((0.0, 0.0), (0.5, 0.5))
        assert len(result.points()) == len(result)
        assert result.data_pages_visited <= result.pages_visited


class TestRectPathEquivalence:
    """Bit-native pruning must match the seed float-rect path exactly."""

    def test_same_answers_and_same_page_counts(self, loaded_tree):
        rng = random.Random(101)
        for _ in range(40):
            lows = tuple(rng.uniform(0, 0.9) for _ in range(2))
            highs = tuple(lo + rng.uniform(0.01, 0.4) for lo in lows)
            fast = loaded_tree.range_query(lows, highs)
            slow = range_query_rectpath(loaded_tree, Rect(lows, highs))
            assert sorted(fast.records) == sorted(slow.records)
            assert fast.pages_visited == slow.pages_visited
            assert fast.data_pages_visited == slow.data_pages_visited

    def test_cell_aligned_edges(self, loaded_tree):
        # Boundaries landing exactly on partition planes are where an
        # inexact integer conversion would diverge from the float test.
        cells = 1 << loaded_tree.space.resolution
        for denom in (2, 4, 8, cells):
            rect = Rect((1 / denom, 0.0), (2 / denom, 1 / denom))
            fast = loaded_tree.range_query(rect.lows, rect.highs)
            slow = range_query_rectpath(loaded_tree, rect)
            assert sorted(fast.records) == sorted(slow.records)
            assert fast.pages_visited == slow.pages_visited

    def test_rectpath_dimension_mismatch(self, loaded_tree):
        with pytest.raises(GeometryError):
            range_query_rectpath(loaded_tree, Rect((0.0,), (1.0,)))


class TestPartialMatch:
    def test_single_dimension_constraint(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        target_x = 0.372
        expected = set()
        for i in range(50):
            y = i / 50
            tree.insert((target_x, y), i, replace=True)
            expected.add((target_x, y))
        for p in make_points(200, 2, seed=41):
            tree.insert(p, None, replace=True)
        result = tree.partial_match({0: target_x})
        assert expected <= set(result.points())
        # Everything returned shares the constrained grid cell.
        cell = 1 / (1 << tree.space.resolution)
        for p in result.points():
            assert abs(p[0] - target_x) <= cell

    def test_symmetry_across_dimensions(self, unit3):
        # The n-dimensional B-tree requirement (§1): any combination of
        # m-of-n constrained attributes is served the same way.
        tree = BVTree(unit3, data_capacity=6, fanout=6)
        for i, p in enumerate(make_points(600, 3, seed=42)):
            tree.insert(p, i, replace=True)
        probe = (0.3, 0.6, 0.9)
        costs = []
        for dim in range(3):
            result = tree.partial_match({dim: probe[dim]})
            costs.append(result.pages_visited)
        assert max(costs) <= 4 * max(min(costs), 1)

    def test_all_dimensions_constrained_is_point_query(self, loaded_tree):
        point, value = next(iter(loaded_tree.items()))
        result = loaded_tree.partial_match({0: point[0], 1: point[1]})
        assert (point, value) in result.records

    def test_no_constraints_returns_all(self, loaded_tree):
        assert len(loaded_tree.partial_match({})) == len(loaded_tree)

    def test_unknown_dimension_rejected(self, loaded_tree):
        with pytest.raises(GeometryError):
            loaded_tree.partial_match({5: 0.3})

    def test_unknown_dimension_reported_before_domain_check(self, loaded_tree):
        # A mixed-error call must fail on the unknown dimension, not on
        # whichever out-of-domain value the interval loop meets first.
        with pytest.raises(GeometryError, match="unknown dimensions"):
            loaded_tree.partial_match({0: 99.0, 5: 0.2})

    def test_unknown_dimension_rejected_even_outside_domain(self, loaded_tree):
        with pytest.raises(GeometryError, match="unknown dimensions"):
            loaded_tree.partial_match({7: 123.456})

    def test_constraint_outside_domain_rejected(self, loaded_tree):
        with pytest.raises(GeometryError):
            loaded_tree.partial_match({0: 1.7})
