"""Unit tests for entries, index nodes and data pages."""

import pytest

from repro.errors import DuplicateKeyError, TreeInvariantError
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.geometry.region import RegionKey


def key(bits: str) -> RegionKey:
    return RegionKey.from_bits(bits)


class TestEntry:
    def test_fields(self):
        e = Entry(key("01"), 2, 7)
        assert e.key == key("01")
        assert e.level == 2
        assert e.page == 7

    def test_rejects_negative_level(self):
        with pytest.raises(TreeInvariantError):
            Entry(key("0"), -1, 1)

    def test_native_check(self):
        e = Entry(key("0"), 2, 1)
        assert e.is_native_in(3)
        assert not e.is_native_in(4)

    def test_matches_path(self):
        e = Entry(key("01"), 0, 1)
        assert e.matches_path(0b0111, 4)
        assert not e.matches_path(0b1011, 4)

    def test_matches_path_shorter_than_key(self):
        e = Entry(key("0110"), 0, 1)
        assert not e.matches_path(0b01, 2)

    def test_repr(self):
        assert "level=1" in repr(Entry(key("0"), 1, 9))


class TestIndexNode:
    def test_native_vs_guard_classification(self):
        node = IndexNode(3)
        native = Entry(key("0"), 2, 1)
        guard = Entry(key("0"), 0, 2)
        node.add(native)
        node.add(guard)
        assert node.natives() == [native]
        assert node.guards() == [guard]
        assert node.native_count() == 1
        assert node.guard_count() == 1
        assert len(node) == 2

    def test_rejects_entry_above_native_level(self):
        node = IndexNode(2)
        with pytest.raises(TreeInvariantError):
            node.add(Entry(key("0"), 2, 1))

    def test_rejects_index_level_zero(self):
        with pytest.raises(TreeInvariantError):
            IndexNode(0)

    def test_rejects_duplicate_key_same_level(self):
        node = IndexNode(2)
        node.add(Entry(key("0"), 1, 1))
        with pytest.raises(TreeInvariantError):
            node.add(Entry(key("0"), 1, 2))

    def test_same_key_different_levels_allowed(self):
        node = IndexNode(3)
        node.add(Entry(key("0"), 2, 1))
        node.add(Entry(key("0"), 1, 2))
        assert len(node) == 2

    def test_remove(self):
        node = IndexNode(2)
        e = Entry(key("0"), 1, 1)
        node.add(e)
        node.remove(e)
        assert len(node) == 0
        with pytest.raises(TreeInvariantError):
            node.remove(e)

    def test_find(self):
        node = IndexNode(2)
        e = Entry(key("01"), 1, 1)
        node.add(e)
        assert node.find(key("01"), 1) is e
        assert node.find(key("01"), 0) is None
        assert node.find(key("00"), 1) is None

    def test_best_native_match_longest_prefix(self):
        node = IndexNode(2)
        short = Entry(key("0"), 1, 1)
        long = Entry(key("011"), 1, 2)
        node.add(short)
        node.add(long)
        path = 0b01110000
        assert node.best_native_match(path, 8) is long
        assert node.best_native_match(0b01000000, 8) is short
        assert node.best_native_match(0b10000000, 8) is None

    def test_matching_guards(self):
        node = IndexNode(3)
        g1 = Entry(key("0"), 0, 1)
        g2 = Entry(key("01"), 1, 2)
        node.add(g1)
        node.add(g2)
        node.add(Entry(key("0"), 2, 3))
        matches = node.matching_guards(0b01110000, 8)
        assert set(map(id, matches)) == {id(g1), id(g2)}
        assert node.matching_guards(0b10000000, 8) == []

    def test_entries_of_level(self):
        node = IndexNode(3)
        node.add(Entry(key("0"), 2, 1))
        node.add(Entry(key("00"), 1, 2))
        node.add(Entry(key("01"), 1, 3))
        assert len(list(node.entries_of_level(1))) == 2
        assert len(list(node.entries_of_level(0))) == 0


class TestDataPage:
    def test_insert_get_delete(self):
        page = DataPage()
        page.insert(0b0101, (0.3, 0.4), "v")
        assert page.get(0b0101) == ((0.3, 0.4), "v")
        assert len(page) == 1
        assert page.delete(0b0101) == ((0.3, 0.4), "v")
        assert len(page) == 0
        assert page.get(0b0101) is None

    def test_duplicate_raises(self):
        page = DataPage()
        page.insert(1, (0.1,), "a")
        with pytest.raises(DuplicateKeyError):
            page.insert(1, (0.1,), "b")

    def test_replace(self):
        page = DataPage()
        page.insert(1, (0.1,), "a")
        page.insert(1, (0.1,), "b", replace=True)
        assert page.get(1) == ((0.1,), "b")
        assert len(page) == 1

    def test_paths(self):
        page = DataPage()
        page.insert(1, (0.1,), None)
        page.insert(2, (0.2,), None)
        assert set(page.paths()) == {1, 2}
