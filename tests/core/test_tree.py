"""Behavioural tests for the public BVTree API."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    GeometryError,
    KeyNotFoundError,
    OutOfSpaceError,
)
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore
from tests.conftest import make_points


class TestBasicOperations:
    def test_insert_get(self, small_tree):
        small_tree.insert((0.1, 0.2), "a")
        small_tree.insert((0.8, 0.9), "b")
        assert small_tree.get((0.1, 0.2)) == "a"
        assert small_tree.get((0.8, 0.9)) == "b"
        assert len(small_tree) == 2

    def test_get_missing(self, small_tree):
        with pytest.raises(KeyNotFoundError):
            small_tree.get((0.5, 0.5))

    def test_contains(self, small_tree):
        small_tree.insert((0.3, 0.3), 1)
        assert small_tree.contains((0.3, 0.3))
        assert (0.3, 0.3) in small_tree
        assert (0.4, 0.4) not in small_tree

    def test_duplicate_point_raises(self, small_tree):
        small_tree.insert((0.5, 0.5), 1)
        with pytest.raises(DuplicateKeyError):
            small_tree.insert((0.5, 0.5), 2)

    def test_replace(self, small_tree):
        small_tree.insert((0.5, 0.5), 1)
        small_tree.insert((0.5, 0.5), 2, replace=True)
        assert small_tree.get((0.5, 0.5)) == 2
        assert len(small_tree) == 1

    def test_grid_duplicates_are_the_same_key(self, unit2):
        # Two points identical at the space's resolution are one key.
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        tree.insert((0.5, 0.5), 1)
        eps = 2.0**-30  # far below 16-bit resolution
        with pytest.raises(DuplicateKeyError):
            tree.insert((0.5 + eps, 0.5), 2)

    def test_point_outside_space(self, small_tree):
        with pytest.raises(OutOfSpaceError):
            small_tree.insert((1.5, 0.5), 1)

    def test_value_defaults_to_none(self, small_tree):
        small_tree.insert((0.2, 0.2))
        assert small_tree.get((0.2, 0.2)) is None

    def test_one_dimensional(self):
        tree = BVTree(DataSpace.unit(1, resolution=20), data_capacity=4, fanout=4)
        for i in range(100):
            tree.insert((i / 100,), i)
        assert tree.get((0.42,)) == 42
        tree.check(sample_points=20)


class TestGrowth:
    def test_height_grows_logarithmically(self, unit2):
        tree = BVTree(unit2, data_capacity=8, fanout=8)
        for i, p in enumerate(make_points(2000, 2)):
            tree.insert(p, i, replace=True)
        assert 2 <= tree.height <= 5
        tree.check(sample_points=50, check_owners=True)

    def test_items_returns_everything(self, small_tree):
        points = make_points(100, 2, seed=1)
        for i, p in enumerate(points):
            small_tree.insert(p, i, replace=True)
        collected = dict(small_tree.items())
        assert len(collected) == len(small_tree)
        for p, i in collected.items():
            assert small_tree.get(p) == i

    def test_search_path_length_equals_height_plus_one(self, loaded_tree):
        # Paper §6: the defining property of the BV-tree.
        for p in make_points(50, 2, seed=9):
            result = loaded_tree.search(p)
            assert result.nodes_visited == loaded_tree.height + 1

    def test_guard_set_bounded_by_height(self, loaded_tree):
        for p in make_points(50, 2, seed=10):
            result = loaded_tree.search(p)
            assert result.max_guard_set <= max(loaded_tree.height - 1, 0)

    def test_shared_store(self, unit2):
        store = PageStore(2048)
        a = BVTree(unit2, data_capacity=4, fanout=4, store=store)
        b = BVTree(unit2, data_capacity=4, fanout=4, store=store)
        for i, p in enumerate(make_points(50, 2)):
            a.insert(p, i, replace=True)
            b.insert(p, -i, replace=True)
        assert store.live_pages() >= 2
        a.check()
        b.check()

    def test_repr(self, small_tree):
        assert "BVTree" in repr(small_tree)


class TestPolicyVariants:
    @pytest.mark.parametrize("policy", ["uniform", "scaled"])
    def test_both_policies_build_correct_trees(self, unit2, policy):
        tree = BVTree(unit2, data_capacity=6, fanout=6, policy=policy)
        points = make_points(800, 2, seed=4)
        for i, p in enumerate(points):
            tree.insert(p, i, replace=True)
        tree.check(sample_points=50, check_owners=True)
        for i, p in enumerate(points[:100]):
            assert tree.get(p) == i

    def test_scaled_pages_accounted_larger(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4, policy="scaled",
                      page_bytes=512)
        for i, p in enumerate(make_points(400, 2, seed=2)):
            tree.insert(p, i, replace=True)
        classes = tree.store.class_stats()
        assert classes[1].page_bytes == 512
        if 2 in classes:
            assert classes[2].page_bytes == 1024


class TestDimensionality:
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4, 5])
    def test_every_dimensionality(self, ndim):
        space = DataSpace.unit(ndim, resolution=12)
        tree = BVTree(space, data_capacity=6, fanout=6)
        points = make_points(300, ndim, seed=ndim)
        for i, p in enumerate(points):
            tree.insert(p, i, replace=True)
        tree.check(sample_points=30)
        found = sum(tree.contains(p) for p in points)
        assert found == len(points)  # replace=True keeps last value

    def test_non_unit_bounds(self):
        space = DataSpace([(-100.0, 100.0), (0.0, 1e6)], resolution=16)
        tree = BVTree(space, data_capacity=6, fanout=6)
        import random

        r = random.Random(3)
        pts = [(r.uniform(-100, 100), r.uniform(0, 1e6)) for _ in range(300)]
        for i, p in enumerate(pts):
            tree.insert(p, i, replace=True)
        tree.check(sample_points=30)
        res = tree.range_query((-50.0, 0.0), (50.0, 5e5))
        expected = [p for p in set(pts) if -50 <= p[0] < 50 and p[1] < 5e5]
        assert len(res) == len(expected)
