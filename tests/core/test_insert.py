"""Tests for insertion mechanics: splits, promotion, demotion (paper §2/§4)."""

import pytest

from repro.core.insert import split_data_page
from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from tests.conftest import make_points


class TestDataSplit:
    def test_first_overflow_creates_root_node(self, small_tree):
        for i, p in enumerate(make_points(5, 2)):
            small_tree.insert(p, i, replace=True)
        assert small_tree.height == 1
        root = small_tree.store.read(small_tree.root_page)
        assert isinstance(root, IndexNode)
        assert root.native_count() == 2
        small_tree.check(sample_points=5)

    def test_split_preserves_records(self, small_tree):
        points = make_points(30, 2, seed=2)
        for i, p in enumerate(points):
            small_tree.insert(p, i, replace=True)
        for i, p in enumerate(points):
            assert small_tree.get(p) == i

    def test_both_sides_hold_a_third(self, unit2):
        tree = BVTree(unit2, data_capacity=9, fanout=9)
        for i, p in enumerate(make_points(500, 2, seed=3)):
            tree.insert(p, i, replace=True)
        stats = tree.tree_stats()
        assert stats.min_data_occupancy >= tree.policy.min_data_occupancy()

    def test_outer_keeps_key_inner_extends(self, small_tree):
        for i, p in enumerate(make_points(5, 2)):
            small_tree.insert(p, i, replace=True)
        root: IndexNode = small_tree.store.read(small_tree.root_page)
        keys = sorted(e.key for e in root.natives())
        assert keys[0].is_prefix_of(keys[1]) or keys[0].disjoint(keys[1])


class TestPromotion:
    def test_promotions_occur_under_pressure(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(1500, 2, seed=5)):
            tree.insert(p, i, replace=True)
        assert tree.stats.promotions > 0
        stats = tree.tree_stats()
        assert stats.total_guards > 0
        tree.check(sample_points=50, check_owners=True)

    def test_guards_are_labelled_below_native_level(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(1500, 2, seed=5)):
            tree.insert(p, i, replace=True)
        stack = [tree.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                continue
            node = tree.store.read(entry.page)
            for child in node.entries:
                assert child.level <= node.index_level - 1
                stack.append(child)

    def test_worst_case_guard_bound(self, unit2):
        # Paper §2: at index level x there are at most (x-1) promoted
        # entries per unpromoted entry.
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(2000, 2, seed=6)):
            tree.insert(p, i, replace=True)
        stack = [tree.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                continue
            node = tree.store.read(entry.page)
            limit = node.native_count() * max(node.index_level - 1, 0)
            assert node.guard_count() <= limit
            stack.extend(node.entries)

    def test_registry_matches_structure(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(700, 2, seed=7)):
            tree.insert(p, i, replace=True)
        tree.check()  # includes registry reconciliation


class TestAdversarialInsertion:
    def test_nested_hotspot_keeps_invariants(self, unit2):
        from repro.workloads import nested_hotspot

        tree = BVTree(unit2, data_capacity=4, fanout=8)
        for i, p in enumerate(nested_hotspot(1200, 2, seed=1)):
            tree.insert(p, i, replace=True)
        tree.check(sample_points=50, check_owners=True)

    def test_promotion_storm_keeps_invariants(self, unit2):
        from repro.workloads import promotion_storm

        tree = BVTree(unit2, data_capacity=4, fanout=8)
        for i, p in enumerate(promotion_storm(1200, 2, seed=1)):
            tree.insert(p, i, replace=True)
        tree.check(sample_points=50, check_owners=True)

    def test_sequential_1d(self):
        from repro.workloads import sequential_1d

        tree = BVTree(DataSpace.unit(1, resolution=20), data_capacity=8, fanout=8)
        for i, p in enumerate(sequential_1d(1000)):
            tree.insert(p, i, replace=True)
        tree.check(sample_points=50, check_owners=True)
        # §2's degeneration claim: in one dimension the BV-tree keeps the
        # B-tree's characteristics — every search path has length
        # height+1 and nodes stay above minimum occupancy.  (Guards can
        # still exist: the 1-d binary partition has enclosure too.)
        stats = tree.tree_stats()
        assert stats.min_data_occupancy >= tree.policy.min_data_occupancy()
        assert stats.total_guards <= stats.index_nodes

    def test_direct_split_call_rejects_tiny_page(self, small_tree):
        # split_data_page on a page with a single record is a caller bug.
        from repro.errors import TreeInvariantError

        small_tree.insert((0.5, 0.5), 1)
        entry = small_tree.root_entry()
        with pytest.raises(TreeInvariantError):
            split_data_page(small_tree, entry)
