"""Unit tests of the columnar page layout (:mod:`repro.core.columnar`).

The differential property suite
(``tests/properties/test_columnar_equivalence.py``) proves whole-tree
equivalence with the object layout; these tests pin down the column
mechanics directly — sorted-order maintenance, contiguous block
extraction, guard/native column bookkeeping — plus the layout selection
plumbing on the tree and store.
"""

import pytest

from repro.core.columnar import (
    LAYOUTS,
    ColumnarDataPage,
    ColumnarIndexNode,
    locate_columnar,
)
from repro.core.descent import locate
from repro.core.entry import Entry
from repro.core.tree import BVTree
from repro.errors import DuplicateKeyError, ReproError, TreeInvariantError
from repro.geometry.region import RegionKey
from repro.geometry.space import DataSpace
from repro.storage.pager import ColumnarStore, PageStore


def make_page(records=(), ndim=2, path_bits=8):
    page = ColumnarDataPage(ndim, path_bits)
    for path, point, value in records:
        page.insert(path, point, value)
    return page


class TestColumnarDataPage:
    def test_insert_keeps_paths_sorted(self):
        page = make_page()
        for path in (9, 3, 200, 40, 7):
            page.insert(path, (0.1, 0.2), path)
        assert list(page.paths()) == [3, 7, 9, 40, 200]
        assert len(page) == 5

    def test_duplicate_raises_unless_replace(self):
        page = make_page([(5, (0.1, 0.2), "a")])
        with pytest.raises(DuplicateKeyError):
            page.insert(5, (0.1, 0.2), "b")
        page.insert(5, (0.3, 0.4), "b", replace=True)
        assert page.get(5) == ((0.3, 0.4), "b")
        assert len(page) == 1

    def test_get_delete_contains(self):
        page = make_page([(5, (0.1, 0.2), "a"), (9, (0.5, 0.6), "b")])
        assert 5 in page and 9 in page and 7 not in page
        assert page.get(7) is None
        assert page.delete(5) == ((0.1, 0.2), "a")
        assert 5 not in page
        with pytest.raises(KeyError):
            page.delete(5)
        assert list(page.paths()) == [9]

    def test_records_view_is_read_only_and_ordered(self):
        page = make_page([(9, (0.5, 0.6), "b"), (5, (0.1, 0.2), "a")])
        view = page.records
        assert list(view) == [5, 9]
        assert view[5] == ((0.1, 0.2), "a")
        with pytest.raises(TypeError):
            view[7] = ((0.0, 0.0), "c")

    def test_extract_block_is_a_contiguous_slice(self):
        # Paths 0b00xxxxxx .. 0b11xxxxxx; extract the '10' block.
        page = make_page(
            [(p, (p / 256, 0.0), p) for p in (10, 100, 130, 150, 180, 220)]
        )
        inner = page.extract_block(RegionKey(2, 0b10), path_bits=8)
        assert list(inner.paths()) == [130, 150, 180]
        assert list(page.paths()) == [10, 100, 220]
        assert inner.get(150) == ((150 / 256, 0.0), 150)

    def test_absorb_merges_disjoint_blocks(self):
        outer = make_page([(p, (0.0, 0.0), p) for p in (10, 220)])
        inner = make_page([(p, (0.0, 0.0), p) for p in (130, 150)])
        outer.absorb(inner)
        assert list(outer.paths()) == [10, 130, 150, 220]

    def test_fill_sorted_bulk_append(self):
        page = make_page()
        page.fill_sorted(
            (p, (p / 256, 0.5), p * 2) for p in (3, 40, 200)
        )
        assert list(page.paths()) == [3, 40, 200]
        assert page.get(40) == ((40 / 256, 0.5), 80)


def make_node(entries=(), index_level=1, path_bits=8):
    return ColumnarIndexNode(
        index_level, entries, ndim=2, resolution=4, path_bits=path_bits
    )


class TestColumnarIndexNode:
    def test_add_remove_keep_columns_in_step(self):
        native = Entry(RegionKey(2, 0b10), 0, page=7)
        nested = Entry(RegionKey(4, 0b1011), 0, page=8)
        node = make_node([native, nested])
        assert node.native_count() == 2
        # Longest prefix wins for a path inside the nested block.
        assert node.best_native_match(0b10110001, 8) is nested
        assert node.best_native_match(0b10000001, 8) is native
        assert node.best_native_match(0b11000000, 8) is None
        node.remove(nested)
        assert node.native_count() == 1
        assert node.best_native_match(0b10110001, 8) is native

    def test_short_search_paths_skip_longer_natives(self):
        nested = Entry(RegionKey(4, 0b1011), 0, page=8)
        node = make_node([nested])
        # A 2-bit search path cannot match a 4-bit native key.
        assert node.best_native_match(0b10, 2) is None
        assert node.best_native_match(0b1011, 4) is nested

    def test_guard_columns_and_matching(self):
        node = make_node(index_level=2, path_bits=8)
        native = Entry(RegionKey(1, 0b0), 1, page=3)
        guard = Entry(RegionKey(2, 0b00), 0, page=4)
        node.add(native)
        node.add(guard)
        assert node.guard_count() == 1
        assert node.matching_guards(0b00110000, 8) == [guard]
        assert node.matching_guards(0b01110000, 8) == []
        # Guards longer than the search path never match.
        assert node.matching_guards(0b0, 1) == []
        node.remove(guard)
        assert node.matching_guards(0b00110000, 8) == []

    def test_remove_missing_entry_raises(self):
        node = make_node()
        with pytest.raises(TreeInvariantError):
            node.remove(Entry(RegionKey(1, 0), 0, page=9))


class TestLayoutSelection:
    def test_columnar_store_implies_columnar_layout(self):
        tree = BVTree(DataSpace.unit(2, resolution=8), store=ColumnarStore())
        assert tree.layout == "columnar"
        assert isinstance(tree.store.read(tree.root_page), ColumnarDataPage)

    def test_explicit_flag_overrides_plain_store(self):
        tree = BVTree(
            DataSpace.unit(2, resolution=8),
            store=PageStore(),
            layout="columnar",
        )
        assert tree.layout == "columnar"
        assert isinstance(tree.store.read(tree.root_page), ColumnarDataPage)

    def test_default_is_object(self):
        tree = BVTree(DataSpace.unit(2, resolution=8))
        assert tree.layout == "object"
        assert not isinstance(tree.store.read(tree.root_page), ColumnarDataPage)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ReproError):
            BVTree(DataSpace.unit(2, resolution=8), layout="rowwise")

    def test_layouts_constant(self):
        assert LAYOUTS == ("object", "columnar")


class TestLocateColumnar:
    def make_tree(self, n=300):
        space = DataSpace.unit(2, resolution=8)
        tree = BVTree(
            space, data_capacity=4, fanout=4, store=ColumnarStore()
        )
        for i in range(n):
            tree.insert(
                ((i * 37 % 256) / 256, (i * 101 % 256) / 256), i, replace=True
            )
        assert tree.height > 0
        return tree

    def test_matches_generic_locate(self):
        tree = self.make_tree()
        for i in range(0, 300, 7):
            point = ((i * 37 % 256) / 256, (i * 101 % 256) / 256)
            path = tree.space.point_path(point)
            found = locate(tree, path)
            entry, owner, guard_map, max_guards = locate_columnar(tree, path)
            assert entry is found.entry
            assert owner == found.owner_page
            assert max_guards == found.max_guard_set
            surviving = {
                lvl: found.guards.peek(lvl) for lvl in found.guards.levels()
            }
            assert guard_map == surviving

    def test_index_nodes_are_columnar(self):
        tree = self.make_tree()
        root = tree.store.read(tree.root_page)
        assert isinstance(root, ColumnarIndexNode)
