"""Unit tests for the balanced binary split ([LS89] argument)."""

import pytest

from repro.errors import ResolutionExhaustedError, TreeInvariantError
from repro.core.split import choose_split, split_candidates
from repro.geometry.region import ROOT_KEY, RegionKey


def items_from_bits(*bits: str, path_bits: int = 8):
    """Items at full path length from literal bit strings."""
    return [(int(b, 2) << (path_bits - len(b)), path_bits) for b in bits]


class TestSplitCandidates:
    def test_even_population_splits_at_first_halving(self):
        items = items_from_bits("0001", "0010", "1001", "1010")
        candidates = split_candidates(ROOT_KEY, items)
        blocks = {key.bit_string(): n for key, n in candidates}
        assert blocks["0"] == 2
        assert blocks["1"] == 2
        # Deeper fallback candidates may follow, but never unbalance the
        # choice: the chooser still picks the first halving.
        assert choose_split(ROOT_KEY, items).nbits == 1

    def test_skewed_population_descends(self):
        items = items_from_bits("0000", "0001", "0010", "0011", "0100", "1000")
        candidates = split_candidates(ROOT_KEY, items)
        # 5 of 6 are under '0': the descent must go deeper than one bit.
        assert any(key.nbits >= 2 for key, _ in candidates)
        for _, n in candidates:
            assert 0 < n < len(items)

    def test_counts_respect_base(self):
        items = items_from_bits("0100", "0101", "0110")
        with pytest.raises(TreeInvariantError):
            split_candidates(RegionKey.from_bits("00"), items)

    def test_single_item_rejected(self):
        with pytest.raises(TreeInvariantError):
            split_candidates(ROOT_KEY, items_from_bits("0101"))

    def test_duplicate_paths_exhaust_resolution(self):
        items = items_from_bits("0101", "0101", "0101")
        with pytest.raises(ResolutionExhaustedError):
            split_candidates(ROOT_KEY, items)

    def test_stop_count_within_thirds(self):
        # The greedy-stop candidate always lands in (N/3 - 1/2, 2N/3].
        for n_left in range(1, 12):
            bits = [f"0{i:07b}" for i in range(n_left)] + ["10000000"]
            items = items_from_bits(*bits)
            total = len(items)
            best = choose_split(ROOT_KEY, items)
            inside = sum(
                1
                for path, pb in items
                if best.contains_path(path, pb)
            )
            assert 1 <= inside <= total - 1


class TestChooseSplit:
    def test_balances_even_population(self):
        items = items_from_bits("0001", "0010", "1001", "1010")
        best = choose_split(ROOT_KEY, items)
        assert best.nbits == 1

    def test_respects_promotion_cost(self):
        items = items_from_bits("0000", "0001", "0010", "1000", "1001", "1010")
        # Without cost both halves tie; a native-promotion cost on block
        # '1' should steer the choice to block '0'.
        best = choose_split(
            ROOT_KEY,
            items,
            cost=lambda block: (1, 0) if block.bit_string() == "1" else (0, 0),
        )
        assert best.bit_string() == "0"

    def test_soft_cost_breaks_ties(self):
        items = items_from_bits("0000", "0001", "0010", "1000", "1001", "1010")
        best = choose_split(
            ROOT_KEY,
            items,
            cost=lambda block: (0, 3) if block.bit_string() == "0" else (0, 0),
        )
        assert best.bit_string() == "1"

    def test_guarantees_one_third_without_cost(self):
        # Deterministic sweep over clustered populations.
        for cluster in range(3, 30):
            bits = [f"00{i:06b}" for i in range(cluster)] + ["10000000"]
            items = items_from_bits(*bits)
            best = choose_split(ROOT_KEY, items)
            inside = sum(
                1 for path, pb in items if best.contains_path(path, pb)
            )
            outside = len(items) - inside
            assert min(inside, outside) >= max(1, len(items) // 3 - 1)

    def test_infeasible_outer_raises(self):
        items = items_from_bits("0000", "0001")
        with pytest.raises(TreeInvariantError):
            choose_split(ROOT_KEY, items, cost=lambda block: (5, 0))

    def test_base_offset_split(self):
        base = RegionKey.from_bits("11")
        items = [
            (0b11000000, 8),
            (0b11000001, 8),
            (0b11100000, 8),
            (0b11100001, 8),
        ]
        best = choose_split(base, items)
        assert base.is_prefix_of(best)
        assert best.nbits == 3
