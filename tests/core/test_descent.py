"""Tests for the descent machinery (exact-match search, owner lookup)."""

import pytest

from repro.errors import TreeInvariantError
from repro.core.descent import find_owner, locate, step
from repro.core.entry import Entry
from repro.core.guards import GuardSet
from repro.core.node import IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import RegionKey
from tests.conftest import make_points


def key(bits: str) -> RegionKey:
    return RegionKey.from_bits(bits)


class TestStep:
    def test_native_wins_without_guards(self):
        node = IndexNode(1)
        e = Entry(key("0"), 0, 5)
        node.add(e)
        guards = GuardSet()
        winner, owner = step(node, 99, 0b0100, 4, guards)
        assert winner is e
        assert owner == 99

    def test_carried_guard_wins_with_longer_key(self):
        node = IndexNode(1)
        native = Entry(key("0"), 0, 5)
        node.add(native)
        guards = GuardSet()
        guard = Entry(key("01"), 0, 6)
        guards.merge(guard, 42)
        winner, owner = step(node, 99, 0b0100, 4, guards)
        assert winner is guard
        assert owner == 42

    def test_carried_guard_loses_with_shorter_key(self):
        node = IndexNode(1)
        native = Entry(key("01"), 0, 5)
        node.add(native)
        guards = GuardSet()
        guards.merge(Entry(key("0"), 0, 6), 42)
        winner, owner = step(node, 99, 0b0100, 4, guards)
        assert winner is native
        # The losing guard was consumed either way (paper §3).
        assert guards.peek(0) is None

    def test_in_node_guards_join_the_set(self):
        node = IndexNode(2)
        node.add(Entry(key("0"), 1, 5))
        lower_guard = Entry(key("01"), 0, 6)
        node.add(lower_guard)
        guards = GuardSet()
        step(node, 99, 0b0100, 4, guards)
        assert guards.peek(0) == (lower_guard, 99)

    def test_no_coverage_raises(self):
        node = IndexNode(1)
        node.add(Entry(key("0"), 0, 5))
        with pytest.raises(TreeInvariantError):
            step(node, 99, 0b1000, 4, GuardSet())


class TestLocate:
    def test_every_point_locates_to_its_page(self, loaded_tree):
        for point, value in list(loaded_tree.items())[:100]:
            path = loaded_tree.space.point_path(point)
            found = locate(loaded_tree, path)
            page = loaded_tree.store.read(found.entry.page)
            assert page.records[path][1] == value

    def test_path_length_invariant(self, loaded_tree):
        for p in make_points(40, 2, seed=12):
            found = locate(loaded_tree, loaded_tree.space.point_path(p))
            assert found.nodes_visited == loaded_tree.height + 1

    def test_locate_on_empty_tree(self, small_tree):
        found = locate(small_tree, 0)
        assert found.entry.level == 0
        assert found.nodes_visited == 1
        assert found.owner_page is None


class TestFindOwner:
    def test_root_entry_has_no_owner(self, loaded_tree):
        assert find_owner(loaded_tree, loaded_tree.root_entry()) is None

    def test_every_entry_is_found_in_its_node(self, loaded_tree):
        stack = [loaded_tree.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                continue
            node = loaded_tree.store.read(entry.page)
            for child in node.entries:
                assert find_owner(loaded_tree, child) == entry.page
                stack.append(child)

    def test_guard_owners_found(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(1500, 2, seed=5)):
            tree.insert(p, i, replace=True)
        assert tree.tree_stats().total_guards > 0
        tree.check(check_owners=True)
