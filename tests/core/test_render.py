"""Tests for the tree renderings."""

import pytest

from repro.errors import GeometryError
from repro.core.render import render_partition, render_tree
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from tests.conftest import make_points


class TestRenderTree:
    def test_empty_tree(self, small_tree):
        text = render_tree(small_tree)
        assert "data page" in text
        assert "0 record(s)" in text

    def test_all_pages_listed(self, loaded_tree):
        text = render_tree(loaded_tree)
        stats = loaded_tree.tree_stats()
        assert text.count("data page") == stats.data_pages
        assert text.count("index node") == stats.index_nodes

    def test_guards_marked(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(1200, 2, seed=111)):
            tree.insert(p, i, replace=True)
        assert tree.tree_stats().total_guards > 0
        assert "* guard:" in render_tree(tree)

    def test_depth_cap(self, loaded_tree):
        text = render_tree(loaded_tree, max_depth=1)
        assert "…" in text
        assert len(text.splitlines()) < len(render_tree(loaded_tree).splitlines())

    def test_root_key_shown_as_epsilon(self, small_tree):
        assert "'ε'" in render_tree(small_tree)


class TestRenderPartition:
    def test_raster_dimensions(self, loaded_tree):
        text = render_partition(loaded_tree, width=20, height=8)
        rows = text.splitlines()
        assert len(rows) == 9  # 8 raster rows + legend
        assert all(len(row) == 20 for row in rows[:8])

    def test_single_page_is_uniform(self, small_tree):
        small_tree.insert((0.5, 0.5), 1)
        text = render_partition(small_tree, width=10, height=4)
        raster = set("".join(text.splitlines()[:4]))
        assert len(raster) == 1

    def test_every_page_appears(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=8)
        for i, p in enumerate(make_points(60, 2, seed=112)):
            tree.insert(p, i, replace=True)
        text = render_partition(tree, width=64, height=32)
        raster = set("".join(text.splitlines()[:32]))
        # Every data page should own at least one raster cell at this
        # resolution for a 60-point tree.
        assert len(raster) == tree.tree_stats().data_pages

    def test_legend_present(self, loaded_tree):
        text = render_partition(loaded_tree, width=16, height=6)
        assert "page" in text.splitlines()[-1]

    def test_rejects_non_2d(self, unit3):
        tree = BVTree(unit3, data_capacity=4, fanout=4)
        with pytest.raises(GeometryError):
            render_partition(tree)
