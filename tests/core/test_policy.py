"""Unit tests for capacity policies (§7 configurations)."""

import pytest

from repro.errors import TreeInvariantError
from repro.core.entry import Entry
from repro.core.node import IndexNode
from repro.core.policy import CapacityPolicy
from repro.geometry.region import RegionKey


def node_with(index_level: int, natives: int, guards: int) -> IndexNode:
    node = IndexNode(index_level)
    for i in range(natives):
        node.add(Entry(RegionKey(8, i), index_level - 1, i))
    for i in range(guards):
        node.add(Entry(RegionKey(8, 100 + i), 0, 100 + i))
    return node


class TestValidation:
    def test_rejects_small_capacities(self):
        with pytest.raises(TreeInvariantError):
            CapacityPolicy(data_capacity=1)
        with pytest.raises(TreeInvariantError):
            CapacityPolicy(fanout=3)
        with pytest.raises(TreeInvariantError):
            CapacityPolicy(kind="bogus")
        with pytest.raises(TreeInvariantError):
            CapacityPolicy(page_bytes=0)


class TestDataThresholds:
    def test_overflow(self):
        policy = CapacityPolicy(data_capacity=8)
        assert not policy.data_overflows(8)
        assert policy.data_overflows(9)

    def test_underflow_uses_guaranteed_minimum(self):
        policy = CapacityPolicy(data_capacity=12)
        minimum = policy.min_data_occupancy()
        assert minimum >= 12 // 3
        assert policy.data_underflows(minimum - 1)
        assert not policy.data_underflows(minimum)

    def test_min_occupancy_near_one_third(self):
        for capacity in (4, 8, 12, 16, 24, 100):
            policy = CapacityPolicy(data_capacity=capacity)
            minimum = policy.min_data_occupancy()
            assert 1 <= minimum
            assert minimum <= (capacity + 1) // 2
            # The topological bound: within 1 of ceil((P+1)/3).
            assert minimum >= -(-(capacity + 1) // 3) - 1


class TestIndexThresholds:
    def test_scaled_counts_only_natives(self):
        policy = CapacityPolicy(fanout=4, kind="scaled")
        assert not policy.index_overflows(node_with(3, 4, 10))
        assert policy.index_overflows(node_with(3, 5, 0))

    def test_uniform_counts_everything(self):
        policy = CapacityPolicy(fanout=4, kind="uniform")
        assert policy.index_overflows(node_with(3, 2, 3))
        assert not policy.index_overflows(node_with(3, 2, 2))

    def test_underflow_scaled(self):
        policy = CapacityPolicy(fanout=12, kind="scaled")
        minimum = policy.min_index_occupancy()
        assert policy.index_underflows(node_with(2, minimum - 1, 0))
        assert not policy.index_underflows(node_with(2, minimum, 0))


class TestPageSizes:
    def test_uniform_pages_constant(self):
        policy = CapacityPolicy(kind="uniform", page_bytes=1000)
        assert policy.index_node_bytes(1) == 1000
        assert policy.index_node_bytes(5) == 1000
        assert policy.size_class(5) == 1

    def test_scaled_pages_grow_linearly(self):
        # §7.3: "every page at index level x is of size B.x"
        policy = CapacityPolicy(kind="scaled", page_bytes=1000)
        assert policy.index_node_bytes(1) == 1000
        assert policy.index_node_bytes(4) == 4000
        assert policy.size_class(4) == 4

    def test_repr(self):
        assert "scaled" in repr(CapacityPolicy(kind="scaled"))
