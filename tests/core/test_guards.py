"""Unit tests for guard sets (paper §3)."""

import pytest

from repro.errors import TreeInvariantError
from repro.core.entry import Entry
from repro.core.guards import GuardSet
from repro.geometry.region import RegionKey


def entry(bits: str, level: int = 0) -> Entry:
    return Entry(RegionKey.from_bits(bits), level, 1)


class TestMerge:
    def test_keeps_longer_prefix(self):
        guards = GuardSet()
        short = entry("0")
        long = entry("011")
        guards.merge(short, 10)
        guards.merge(long, 11)
        assert guards.peek(0) == (long, 11)

    def test_poorer_match_discarded_regardless_of_order(self):
        guards = GuardSet()
        long = entry("011")
        guards.merge(long, 11)
        guards.merge(entry("0"), 10)
        assert guards.peek(0) == (long, 11)

    def test_levels_are_independent(self):
        guards = GuardSet()
        g0 = entry("0", 0)
        g1 = entry("01", 1)
        guards.merge(g0, 1)
        guards.merge(g1, 2)
        assert guards.peek(0)[0] is g0
        assert guards.peek(1)[0] is g1
        assert len(guards) == 2

    def test_disjoint_same_level_same_length_raises(self):
        guards = GuardSet()
        guards.merge(entry("01"), 1)
        with pytest.raises(TreeInvariantError):
            guards.merge(entry("10"), 2)

    def test_same_entry_key_remerge_is_noop(self):
        guards = GuardSet()
        e = entry("01")
        guards.merge(e, 1)
        guards.merge(entry("01"), 2)  # equal key, equal length
        assert guards.peek(0) == (e, 1)


class TestConsume:
    def test_consume_removes(self):
        guards = GuardSet()
        e = entry("0", 1)
        guards.merge(e, 5)
        assert guards.consume(1) == (e, 5)
        assert guards.consume(1) is None
        assert 1 not in guards

    def test_consume_absent_level(self):
        assert GuardSet().consume(3) is None


class TestInspection:
    def test_levels_sorted(self):
        guards = GuardSet()
        guards.merge(entry("0", 2), 1)
        guards.merge(entry("0", 0), 1)
        assert list(guards.levels()) == [0, 2]

    def test_refs(self):
        guards = GuardSet()
        guards.merge(entry("0", 0), 7)
        assert list(guards.refs())[0][1] == 7

    def test_copy_is_independent(self):
        guards = GuardSet()
        guards.merge(entry("0", 0), 1)
        clone = guards.copy()
        clone.consume(0)
        assert 0 in guards
        assert 0 not in clone

    def test_repr(self):
        guards = GuardSet()
        guards.merge(entry("01", 0), 1)
        assert "01" in repr(guards)
