"""Tests for canonical placement (shadowing, straddling, the walk)."""

import pytest

from repro.core.entry import Entry
from repro.core.placement import (
    canonical_encloser,
    justified,
    placement_walk,
    shadowed,
)
from repro.core.node import IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import RegionKey
from tests.conftest import make_points


def key(bits: str) -> RegionKey:
    return RegionKey.from_bits(bits)


@pytest.fixture
def tree(unit2):
    return BVTree(unit2, data_capacity=4, fanout=4)


def register(tree, level, bits):
    entry = Entry(key(bits), level, 0)
    tree.register_entry(entry)
    return entry


class TestShadowed:
    def test_no_keys_no_shadow(self, tree):
        assert not shadowed(tree, 0, key("0"), key("0011"))

    def test_between_key_shadows(self, tree):
        register(tree, 0, "00")
        assert shadowed(tree, 0, key("0"), key("0011"))

    def test_upper_boundary_key_shadows(self, tree):
        # u == t counts: a same-level key covering t's whole block.
        register(tree, 0, "0011")
        assert shadowed(tree, 0, key("0"), key("0011"))

    def test_lower_boundary_key_does_not_shadow(self, tree):
        register(tree, 0, "0")  # equals `lower` — not strictly between
        assert not shadowed(tree, 0, key("0"), key("0011"))

    def test_other_levels_do_not_shadow(self, tree):
        register(tree, 1, "00")
        assert not shadowed(tree, 0, key("0"), key("0011"))

    def test_exclusion(self, tree):
        register(tree, 0, "00")
        assert not shadowed(
            tree, 0, key("0"), key("0011"), exclude=frozenset({key("00")})
        )


class TestCanonicalEncloser:
    def test_longest_prefix_wins(self, tree):
        short = register(tree, 0, "0")
        long = register(tree, 0, "001")
        assert canonical_encloser(tree, 0, key("00110")) is long
        assert canonical_encloser(tree, 0, key("01")) is short

    def test_none_when_no_prefix(self, tree):
        register(tree, 0, "1")
        assert canonical_encloser(tree, 0, key("01")) is None

    def test_self_is_not_its_own_encloser(self, tree):
        register(tree, 0, "01")
        assert canonical_encloser(tree, 0, key("01")) is None

    def test_exclusion_falls_back(self, tree):
        short = register(tree, 0, "0")
        register(tree, 0, "001")
        assert (
            canonical_encloser(
                tree, 0, key("00110"), exclude=frozenset({key("001")})
            )
            is short
        )


class TestJustified:
    def test_straddling_guard_is_justified(self, tree):
        node = IndexNode(2)
        target = Entry(key("0011"), 1, 1)
        node.add(target)
        tree.register_entry(target)
        probe = Entry(key("0"), 0, 2)
        assert justified(tree, probe, node)

    def test_shadowed_guard_is_not_justified(self, tree):
        node = IndexNode(2)
        target = Entry(key("0011"), 1, 1)
        node.add(target)
        tree.register_entry(target)
        shadow = register(tree, 0, "001")
        probe = Entry(key("0"), 0, 2)
        assert not justified(tree, probe, node)

    def test_no_targets_means_unjustified(self, tree):
        node = IndexNode(2)
        node.add(Entry(key("1"), 1, 1))
        probe = Entry(key("0"), 0, 2)
        assert not justified(tree, probe, node)


class TestPlacementWalkIntegration:
    def test_native_placement_in_real_tree(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, p in enumerate(make_points(400, 2, seed=71)):
            tree.insert(p, i, replace=True)
        # Every stored entry must already sit where the walk would put it
        # (placement is canonical and stable).
        stack = [tree.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                continue
            node = tree.store.read(entry.page)
            for child in node.entries:
                target, _ = placement_walk(tree, child.key, child.level)
                assert target == entry.page, (
                    f"{child!r} stored in {entry.page}, walk says {target}"
                )
                stack.append(child)


class TestPromotionReplacementOrder:
    """Regression: promoted entries must be re-placed highest level first.

    Found by the hypothesis model suite: when an index split promotes
    both a native and a lower-level guard, re-placing the guard before
    the higher-level entry demotes it along a path that stops existing
    once the higher-level entry returns — a later owner descent then
    falls through to level 0 without finding the entry.  The sequence
    below (shrunk from the falsifying example) builds exactly that
    promoted pair; it corrupts the tree when ``split_index_node`` or
    ``_demote_unjustified`` re-place in ascending level order.
    """

    CELLS = [
        (314, 0), (641, 0), (0, 1007), (0, 200), (479, 0), (331, 389),
        (350, 0), (0, 400), (0, 35), (114, 0), (557, 0), (0, 181),
        (693, 512), (0, 311), (431, 0), (0, 266), (0, 435), (512, 0),
        (397, 0), (0, 2), (510, 512), (514, 0), (0, 515), (513, 0),
        (0, 1), (0, 514), (0, 513), (256, 256), (0, 512), (385, 0),
        (384, 0), (0, 0), (0, 384),
    ]

    @pytest.mark.parametrize("layout", ["object", "columnar"])
    def test_shrunk_falsifying_sequence(self, layout):
        from repro.geometry.space import DataSpace

        space = DataSpace.unit(2, resolution=10)
        tree = BVTree(space, data_capacity=4, fanout=4, layout=layout)
        for i, cell in enumerate(self.CELLS):
            tree.insert((cell[0] / 1024, cell[1] / 1024), i, replace=True)
        for i, cell in enumerate(self.CELLS):
            assert tree.get((cell[0] / 1024, cell[1] / 1024)) is not None
        tree.check(check_owners=True, check_occupancy=False)
