"""One test per checker error branch, matched on the message it raises.

The invariant checker's value is its diagnoses: each corruption class has
its own message, and regressions that collapse two classes into one (or
stop detecting one) should fail here even if *some* error still comes
out.  ``tests/core/test_checker.py`` checks that corruption is detected;
this module pins down *which* error each corruption produces.
"""

import pytest

from repro.errors import TreeInvariantError
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import RegionKey
from tests.conftest import make_points


@pytest.fixture
def tree(unit2):
    t = BVTree(unit2, data_capacity=4, fanout=4)
    for i, p in enumerate(make_points(200, 2, seed=51)):
        t.insert(p, i, replace=True)
    assert t.height >= 2, "fixture tree too shallow for these corruptions"
    t.check(sample_points=20, check_owners=True)
    return t


def root_node(tree):
    node = tree.store.read(tree.root_page)
    assert isinstance(node, IndexNode)
    return node


def some_data_entry(tree, min_records=1):
    """A non-root level-0 entry whose page holds at least min_records."""
    stack = [tree.root_entry()]
    while stack:
        entry = stack.pop()
        if entry.level == 0:
            if (
                entry.page != tree.root_page
                and len(tree.store.read(entry.page)) >= min_records
            ):
                return entry
            continue
        stack.extend(tree.store.read(entry.page).entries)
    pytest.fail("no suitable data page in fixture tree")


def fresh_level0_key(tree):
    """A full-length level-0 key not registered anywhere in the tree."""
    bits = tree.space.path_bits
    for value in (0, (1 << bits) - 1, 0x5A5A5A5A % (1 << bits)):
        key = RegionKey(bits, value)
        if tree.registered(0, key) is None:
            return key
    pytest.fail("no fresh key found")


class TestCheckerMessages:
    def test_freed_page(self, tree):
        victim = root_node(tree).entries[0]
        tree.store.free(victim.page)
        with pytest.raises(TreeInvariantError, match="freed page"):
            tree.check()

    def test_duplicate_region_key(self, tree):
        node = root_node(tree)
        natives = node.natives()
        assert len(natives) >= 2
        natives[1].key = natives[0].key
        with pytest.raises(TreeInvariantError, match="duplicate level-"):
            tree.check()

    def test_unjustified_guard(self, tree):
        # A full-length level-0 key encloses nothing, so lodging it in the
        # root as a guard is never justified.
        node = root_node(tree)
        assert node.index_level >= 2
        bad = Entry(fresh_level0_key(tree), 0, tree.store.allocate(DataPage()))
        node.add(bad)
        with pytest.raises(TreeInvariantError, match="encloses no"):
            tree.check(check_justification=True)

    def test_count_mismatch(self, tree):
        tree.count += 5
        with pytest.raises(TreeInvariantError, match="tree.count is"):
            tree.check()

    def test_data_occupancy_violation(self, tree):
        entry = some_data_entry(tree, min_records=tree.policy.min_data_occupancy())
        page = tree.store.read(entry.page)
        while len(page) >= tree.policy.min_data_occupancy():
            page.records.pop(next(iter(page.records)))
            tree.count -= 1
        with pytest.raises(TreeInvariantError, match="records, minimum is"):
            tree.check(check_occupancy=True)
        tree.check(check_occupancy=False)

    def test_index_occupancy_violation(self, unit2):
        # Needs a fanout whose index minimum exceeds one entry, so build a
        # wider tree than the shared fixture, then drain a level-1 index
        # node below the minimum — unhooking each removed subtree
        # completely so only the occupancy check can fire.
        wide = BVTree(unit2, data_capacity=4, fanout=12)
        for i, p in enumerate(make_points(400, 2, seed=51)):
            wide.insert(p, i, replace=True)
        min_index = wide.policy.min_index_occupancy()
        assert min_index >= 2
        node = next(
            wide.store.read(pid)
            for pid in wide.store.page_ids()
            if pid != wide.root_page
            and isinstance(wide.store.read(pid), IndexNode)
            and wide.store.read(pid).index_level == 1
            and len(wide.store.read(pid).entries) > 1
        )
        while len(node.entries) > 1:
            victim = node.entries[-1]
            node.remove(victim)
            wide.count -= len(wide.store.read(victim.page))
            wide.store.free(victim.page)
            wide.unregister_entry(victim)
        with pytest.raises(TreeInvariantError, match="entries, minimum is"):
            wide.check(check_occupancy=True)

    def test_double_reference(self, tree):
        # The walk pops entries in reverse order, so aliasing the first
        # native onto the last one's page lets the last be walked cleanly
        # before the first trips the duplicate-reference check.
        natives = root_node(tree).natives()
        assert len(natives) >= 2
        natives[0].page = natives[-1].page
        with pytest.raises(TreeInvariantError, match="more than one entry"):
            tree.check(check_justification=False)

    def test_level0_entry_at_index_node(self, tree):
        # Relabel a native entry as level-0: it now "points at IndexNode".
        entry = root_node(tree).natives()[0]
        entry.level = 0
        with pytest.raises(TreeInvariantError, match="points at IndexNode"):
            tree.check(check_justification=False)

    def test_index_entry_at_data_page(self, tree):
        entry = root_node(tree).natives()[0]
        entry.page = tree.store.allocate(DataPage())
        with pytest.raises(TreeInvariantError, match="points at DataPage"):
            tree.check()

    def test_node_without_native_entries(self, tree):
        node = root_node(tree)
        node.entries[:] = [
            e for e in node.entries if not e.is_native_in(node.index_level)
        ]
        with pytest.raises(TreeInvariantError, match="no native entries"):
            tree.check(check_justification=False)

    def test_entry_level_exceeds_node_level(self, tree):
        node = root_node(tree)
        entry = node.natives()[0]
        entry.level = node.index_level
        with pytest.raises(TreeInvariantError, match="entry in index-level-"):
            tree.check()

    def test_registry_out_of_sync(self, tree):
        phantom = Entry(fresh_level0_key(tree), 0, 999_999)
        tree.keys.setdefault(0, {})[phantom.key] = phantom
        with pytest.raises(TreeInvariantError, match="key registry out of sync"):
            tree.check()

    def test_record_outside_block(self, tree):
        entry = some_data_entry(tree)
        if entry.key.nbits == 0:
            pytest.skip("page block covers the whole space")
        page = tree.store.read(entry.page)
        path = next(iter(page.records))
        flipped = path ^ (1 << (tree.space.path_bits - entry.key.nbits))
        page.records[flipped] = page.records.pop(path)
        with pytest.raises(TreeInvariantError, match="outside its page block"):
            tree.check()
