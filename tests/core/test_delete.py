"""Tests for deletion, merging and redistribution (paper §5)."""

import random

import pytest

from repro.errors import KeyNotFoundError
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from tests.conftest import make_points


class TestBasicDeletion:
    def test_delete_returns_value(self, small_tree):
        small_tree.insert((0.25, 0.25), "payload")
        assert small_tree.delete((0.25, 0.25)) == "payload"
        assert len(small_tree) == 0
        assert not small_tree.contains((0.25, 0.25))

    def test_delete_missing_raises(self, small_tree):
        small_tree.insert((0.25, 0.25), 1)
        with pytest.raises(KeyNotFoundError):
            small_tree.delete((0.75, 0.75))
        assert len(small_tree) == 1

    def test_delete_reinsert(self, small_tree):
        small_tree.insert((0.5, 0.5), 1)
        small_tree.delete((0.5, 0.5))
        small_tree.insert((0.5, 0.5), 2)
        assert small_tree.get((0.5, 0.5)) == 2


class TestMerging:
    def test_delete_everything_collapses_tree(self, unit2):
        tree = BVTree(unit2, data_capacity=6, fanout=6)
        points = make_points(800, 2, seed=21)
        for i, p in enumerate(points):
            tree.insert(p, i, replace=True)
        rng = random.Random(1)
        order = sorted(set(points), key=lambda p: rng.random())
        for p in order:
            tree.delete(p)
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.store.live_pages() == 1  # just the empty root data page
        tree.check(check_occupancy=False)

    def test_merges_keep_records_findable(self, unit2):
        tree = BVTree(unit2, data_capacity=6, fanout=6)
        points = list(dict.fromkeys(make_points(600, 2, seed=22)))
        for i, p in enumerate(points):
            tree.insert(p, i)
        rng = random.Random(2)
        rng.shuffle(points)
        removed, kept = points[:400], points[400:]
        for p in removed:
            tree.delete(p)
        for p in kept:
            assert tree.contains(p)
        for p in removed:
            assert not tree.contains(p)
        tree.check(sample_points=50, check_owners=True, check_occupancy=False)

    def test_occupancy_maintained_under_deletion(self, unit2):
        tree = BVTree(unit2, data_capacity=12, fanout=12)
        points = list(dict.fromkeys(make_points(3000, 2, seed=23)))
        for i, p in enumerate(points):
            tree.insert(p, i)
        rng = random.Random(3)
        rng.shuffle(points)
        for p in points[: len(points) // 2]:
            tree.delete(p)
        stats = tree.tree_stats()
        if tree.stats.deferred_merges == 0:
            assert stats.min_data_occupancy >= tree.policy.min_data_occupancy()
        assert tree.stats.merges > 0

    def test_redistribution_counts(self, unit2):
        # Deleting from clustered data forces merge-then-resplit cycles.
        from repro.workloads import clustered

        tree = BVTree(unit2, data_capacity=6, fanout=6)
        points = list(dict.fromkeys(clustered(1500, 2, clusters=3, seed=4)))
        for i, p in enumerate(points):
            tree.insert(p, i)
        rng = random.Random(5)
        rng.shuffle(points)
        for p in points[: len(points) * 3 // 4]:
            tree.delete(p)
        tree.check(sample_points=40, check_occupancy=False)


class TestMixedWorkload:
    def test_interleaved_insert_delete(self, unit3):
        tree = BVTree(unit3, data_capacity=6, fanout=6)
        rng = random.Random(31)
        live: dict[tuple, int] = {}
        for step in range(4000):
            if live and rng.random() < 0.45:
                point = rng.choice(list(live))
                assert tree.delete(point) == live.pop(point)
            else:
                point = tuple(rng.random() for _ in range(3))
                tree.insert(point, step, replace=True)
                live[point] = step
        assert len(tree) == len(live)
        for point, value in list(live.items())[:300]:
            assert tree.get(point) == value
        tree.check(sample_points=50, check_owners=True, check_occupancy=False)

    def test_grow_shrink_grow(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        points = list(dict.fromkeys(make_points(400, 2, seed=33)))
        for i, p in enumerate(points):
            tree.insert(p, i)
        peak_height = tree.height
        for p in points:
            tree.delete(p)
        assert tree.height == 0
        for i, p in enumerate(points):
            tree.insert(p, i)
        assert tree.height >= peak_height - 1
        tree.check(sample_points=50)

    def test_delete_from_one_dimension(self):
        tree = BVTree(DataSpace.unit(1, resolution=20), data_capacity=8, fanout=8)
        points = [(i / 500,) for i in range(500)]
        for i, p in enumerate(points):
            tree.insert(p, i)
        for p in points[::2]:
            tree.delete(p)
        for i, p in enumerate(points):
            assert tree.contains(p) == (i % 2 == 1)
        tree.check(check_occupancy=False)
