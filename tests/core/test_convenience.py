"""Tests for convenience APIs: get_fast, update_many, clear."""

import random

import pytest

from repro.errors import KeyNotFoundError
from repro.core.tree import BVTree
from tests.conftest import make_points


class TestGetFast:
    def test_agrees_with_get(self, loaded_tree):
        for point, value in list(loaded_tree.items())[:200]:
            assert loaded_tree.get_fast(point) == value
            assert loaded_tree.get_fast(point) == loaded_tree.get(point)

    def test_missing_point(self, loaded_tree):
        with pytest.raises(KeyNotFoundError):
            loaded_tree.get_fast((0.123456789, 0.987654321))

    def test_empty_tree(self, small_tree):
        with pytest.raises(KeyNotFoundError):
            small_tree.get_fast((0.5, 0.5))

    def test_root_data_page(self, small_tree):
        small_tree.insert((0.5, 0.5), "x")
        assert small_tree.get_fast((0.5, 0.5)) == "x"

    def test_agreement_under_churn(self, unit2):
        # get_fast relies on canonical placement; agreement with get after
        # heavy mixed traffic is a live audit of that invariant.
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        rng = random.Random(55)
        live = {}
        for step in range(3000):
            if live and rng.random() < 0.45:
                path = rng.choice(list(live))
                tree.delete(live.pop(path))
            else:
                p = (rng.random(), rng.random())
                tree.insert(p, step, replace=True)
                live[tree.space.point_path(p)] = p
        for path, p in list(live.items())[:300]:
            assert tree.get_fast(p) == tree.get(p)


class TestUpdateMany:
    def test_bulk_insert(self, small_tree):
        points = make_points(200, 2, seed=56)
        added = small_tree.update_many((p, i) for i, p in enumerate(points))
        assert added == len(set(points))
        assert len(small_tree) == added
        small_tree.check(sample_points=50)

    def test_counts_only_new(self, small_tree):
        small_tree.insert((0.5, 0.5), "old")
        added = small_tree.update_many([((0.5, 0.5), "new"), ((0.1, 0.1), "x")])
        assert added == 1
        assert small_tree.get((0.5, 0.5)) == "new"


class TestClear:
    def test_clear_resets(self, loaded_tree):
        store = loaded_tree.store
        loaded_tree.clear()
        assert len(loaded_tree) == 0
        assert loaded_tree.height == 0
        assert store.live_pages() == 1
        assert loaded_tree.keys == {}

    def test_usable_after_clear(self, loaded_tree):
        loaded_tree.clear()
        for i, p in enumerate(make_points(100, 2, seed=57)):
            loaded_tree.insert(p, i, replace=True)
        loaded_tree.check(sample_points=30)

    def test_clear_empty(self, small_tree):
        small_tree.clear()
        assert len(small_tree) == 0
