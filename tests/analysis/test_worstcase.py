"""Tests for the §7.1/§7.2 analysis (equations 1–9)."""

import math

import pytest

from repro.errors import ReproError
from repro.analysis import worstcase as wc


class TestBestCase:
    def test_equation_1(self):
        assert wc.best_case_data_nodes(24, 3) == 24**3
        assert wc.best_case_data_nodes(10, 0) == 1

    def test_equation_2(self):
        # ti(h) = 1 + F + ... + F^(h-1)
        assert wc.best_case_index_nodes(10, 3) == 1 + 10 + 100
        assert wc.best_case_index_nodes(10, 1) == 1
        assert wc.best_case_index_nodes(10, 0) == 0

    def test_equation_3_ratio(self):
        # ti/td -> 1/F for large F
        for fanout in (24, 120, 400):
            ratio = wc.best_case_ratio(fanout, 5)
            assert ratio == pytest.approx(1 / fanout, rel=0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ReproError):
            wc.best_case_data_nodes(1, 3)
        with pytest.raises(ReproError):
            wc.best_case_data_nodes(10, -1)


class TestWorstCase:
    def test_equation_5_binomial(self):
        assert wc.worst_case_data_nodes(24, 1) == 24
        assert wc.worst_case_data_nodes(24, 2) == 24 * 25 // 2
        assert wc.worst_case_data_nodes(24, 3) == math.comb(26, 3)

    def test_recursion_matches_closed_form(self):
        # Equation (4) == equation (5) for all parameters.
        for fanout in (12, 24, 60, 120):
            for height in range(1, 9):
                recursive = wc.worst_case_data_nodes_recursive(fanout, height)
                closed = wc.worst_case_data_nodes(fanout, height)
                assert recursive == pytest.approx(closed, rel=1e-12)

    def test_integer_constrained_never_exceeds_closed_form(self):
        for fanout in (24, 60, 120):
            for height in range(1, 9):
                assert wc.worst_case_data_nodes_integer(
                    fanout, height
                ) <= wc.worst_case_data_nodes(fanout, height)

    def test_integer_constrained_exact_at_divisible_fanout(self):
        # F = 60 is divisible by 1..5: the paper's example of the smallest
        # fan-out exact for height 5.
        assert wc.worst_case_data_nodes_integer(60, 5) == wc.worst_case_data_nodes(60, 5)

    def test_equation_8_index_nodes(self):
        # ti(2) = F/2 (paper's worked value).
        assert wc.worst_case_index_nodes(24, 2) == pytest.approx(12.0)
        assert wc.worst_case_index_nodes(24, 0) == 0.0

    def test_index_recursion_close_to_closed_form(self):
        # Equation (8) neglects the root term of equation (6).
        for fanout in (24, 120):
            for height in range(2, 8):
                recursive = wc.worst_case_index_nodes_recursive(fanout, height)
                closed = wc.worst_case_index_nodes(fanout, height)
                assert recursive == pytest.approx(closed, rel=0.2)

    def test_equation_9_ratio(self):
        for fanout in (24, 120):
            ratio = wc.worst_case_ratio(fanout, 5)
            assert ratio == pytest.approx(1 / fanout, rel=0.1)

    def test_capacity_loss_is_h_factorial(self):
        # The headline result: worst case loses a factor ≈ h!.
        for height in range(1, 7):
            loss = wc.capacity_loss_factor(400, height)
            assert loss == pytest.approx(math.factorial(height), rel=0.15)


class TestHeights:
    def test_best_case_height(self):
        assert wc.best_case_height(24, 1) == 0
        assert wc.best_case_height(24, 24) == 1
        assert wc.best_case_height(24, 25) == 2
        assert wc.best_case_height(24, 24**3) == 3

    def test_worst_case_height_at_least_best(self):
        for nodes in (10, 1000, 10**6):
            assert wc.worst_case_height(24, nodes) >= wc.best_case_height(24, nodes)

    def test_paper_growth_claims_f24(self):
        # Figure 7-1 reading: best-case height 3 -> worst 4, 4 -> 6.
        assert wc.worst_case_height(24, 24**3) == 4
        assert wc.worst_case_height(24, 24**4) == 6
        # Paper says height 5 -> 10; the binomial model gives 9 (the
        # paper's chart is read off a log-scale figure; see EXPERIMENTS.md).
        assert wc.worst_case_height(24, 24**5) in (9, 10)

    def test_paper_growth_claims_f120(self):
        # Figure 7-2 reading: 4 -> 5, 6 -> 8..9.
        assert wc.worst_case_height(120, 120**4) == 5
        assert wc.worst_case_height(120, 120**6) in (8, 9)

    def test_height_penalty(self):
        assert wc.height_penalty(24, 24**4) == 2
        assert wc.height_penalty(120, 120**4) == 1

    def test_rejects_zero_nodes(self):
        with pytest.raises(ReproError):
            wc.best_case_height(24, 0)
        with pytest.raises(ReproError):
            wc.worst_case_height(24, 0)
