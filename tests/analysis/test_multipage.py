"""Tests for the §7.3 multiple-page-size analysis (equations 10–18)."""

import pytest

from repro.errors import ReproError
from repro.analysis import multipage as mp
from repro.analysis import worstcase as wc


class TestDataNodes:
    def test_equation_12_closed_form(self):
        assert mp.worst_case_data_nodes(24, 1) == 24
        assert mp.worst_case_data_nodes(24, 2) == 24 * 25
        assert mp.worst_case_data_nodes(24, 3) == 24 * 25**2

    def test_recursion_matches_closed_form(self):
        for fanout in (12, 24, 120):
            for height in range(1, 9):
                assert mp.worst_case_data_nodes_recursive(
                    fanout, height
                ) == mp.worst_case_data_nodes(fanout, height)

    def test_restores_best_case_capacity(self):
        # §7.3's headline: td(h) = F(F+1)^(h-1) ≈ F^h — the best case.
        for fanout in (24, 120):
            for height in range(1, 7):
                scaled = mp.worst_case_data_nodes(fanout, height)
                best = wc.best_case_data_nodes(fanout, height)
                assert scaled >= best * 0.99  # within 1%; in fact >= best
                assert scaled == pytest.approx(best, rel=0.3)

    def test_beats_uniform_worst_case(self):
        for height in range(2, 8):
            assert mp.worst_case_data_nodes(24, height) > wc.worst_case_data_nodes(
                24, height
            )


class TestIndexNodes:
    def test_equation_14(self):
        assert mp.worst_case_index_nodes(24, 1) == 1
        assert mp.worst_case_index_nodes(24, 2) == 25
        assert mp.worst_case_index_nodes(24, 3) == 25**2
        assert mp.worst_case_index_nodes(24, 0) == 0

    def test_equation_15_ratio_exact(self):
        # "the same as in the best case ... independent of configuration"
        for fanout in (24, 120):
            for height in range(1, 7):
                assert mp.worst_case_ratio(fanout, height) == pytest.approx(
                    1 / fanout
                )


class TestIndexBytes:
    def test_equation_17_recursion(self):
        B, F = 1000, 24
        assert mp.worst_case_index_bytes(F, 1, B) == B
        assert mp.worst_case_index_bytes(F, 2, B) == B * (F + 1) + B

    def test_equation_18_approximation(self):
        # si(h) ≈ B F^(h-1) for F >> 1.
        B = 1024
        for fanout in (120, 400):
            for height in range(2, 7):
                exact = mp.worst_case_index_bytes(fanout, height, B)
                approx = mp.worst_case_index_bytes_approx(fanout, height, B)
                assert exact == pytest.approx(approx, rel=0.1)

    def test_scaled_overhead_negligible(self):
        # "the increased size of the upper level nodes has negligible
        # effect on the overall index size."
        for fanout in (24, 120):
            overhead = mp.scaled_page_overhead(fanout, 6, 1024)
            assert overhead < 2.5 / fanout

    def test_rejects_bad_page_bytes(self):
        with pytest.raises(ReproError):
            mp.worst_case_index_bytes(24, 3, 0)


class TestHeights:
    def test_no_height_penalty_for_practical_sizes(self):
        # With scaled pages the worst case holds best-case capacity, so
        # the height never grows beyond the best case.
        for fanout in (24, 120):
            for height in range(1, 7):
                capacity = wc.best_case_data_nodes(fanout, height)
                assert mp.worst_case_height(fanout, capacity) <= height

    def test_rejects_zero_nodes(self):
        with pytest.raises(ReproError):
            mp.worst_case_height(24, 0)
