"""Tests for the §7.2/§7.3 file-size threshold claims."""

import pytest

from repro.errors import ReproError
from repro.analysis import capacity as cap


class TestConversions:
    def test_file_bytes(self):
        assert cap.file_bytes(100, 1024) == 102400

    def test_data_nodes_for_file(self):
        assert cap.data_nodes_for_file(1024 * 50, 1024) == 50
        assert cap.data_nodes_for_file(100, 1024) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ReproError):
            cap.data_nodes_for_file(0)


class TestPaperClaims:
    def test_f24_100mb_claim(self):
        # §7.3 summary: F=24, 1 KB pages — at most 2 extra levels up to
        # data sets of order 100 MBytes.
        assert cap.height_penalty_for_file(24, 100e6) <= 2

    def test_f24_threshold_covers_claim(self):
        threshold = cap.max_file_size_with_penalty(24, max_penalty=2)
        assert threshold >= 100e6  # the claim is conservative

    def test_f120_200gb_claim(self):
        # §7.2: "up to 200 Gigabytes — the index only has to grow by a
        # maximum of 1 level".
        assert cap.height_penalty_for_file(120, 200e9) <= 1
        assert cap.max_file_size_with_penalty(120, max_penalty=1) >= 200e9

    def test_f120_25tb_claim(self):
        # §7.3 summary: at most 2 extra levels up to ~25 TBytes.
        assert cap.height_penalty_for_file(120, 25e12) <= 2
        assert cap.max_file_size_with_penalty(120, max_penalty=2) >= 25e12

    def test_f120_petabyte_claim(self):
        # §7.2: a worst-case tree of height 8–9 with 1 KB pages holds a
        # file of order 3 PBytes.
        size_h8 = cap.worst_case_file_size_at_height(120, 8)
        size_h9 = cap.worst_case_file_size_at_height(120, 9)
        assert size_h8 <= 3e15 <= size_h9

    def test_penalty_monotone_in_file_size(self):
        penalties = [
            cap.height_penalty_for_file(24, size)
            for size in (1e6, 1e8, 1e10, 1e12)
        ]
        assert penalties == sorted(penalties)

    def test_zero_penalty_region_exists(self):
        threshold = cap.max_file_size_with_penalty(24, max_penalty=0)
        assert threshold >= 24 * 1024  # a single level never penalises

    def test_rejects_negative_penalty(self):
        with pytest.raises(ReproError):
            cap.max_file_size_with_penalty(24, max_penalty=-1)
