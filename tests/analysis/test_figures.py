"""Tests for the Figure 7-1/7-2 data series."""

import math

import pytest

from repro.analysis import figures


class TestFigureSeries:
    def test_rows_cover_heights_1_to_9(self):
        rows = figures.figure_7_1()
        assert [r.height for r in rows] == list(range(1, 10))

    def test_best_case_is_identity_on_log_scale(self):
        for row in figures.figure_7_1():
            assert row.best_log_f == pytest.approx(row.height)

    def test_gap_equals_log_f_h_factorial(self):
        # The figures' shaded area approaches log_F(h!) (the F >> h
        # limit of the binomial closed form).
        for row in figures.figure_7_2():
            expected = math.log(math.factorial(row.height)) / math.log(120)
            assert row.gap_predicted == pytest.approx(expected)
            assert row.gap == pytest.approx(expected, rel=0.15, abs=1e-9)

    def test_gap_grows_with_height(self):
        rows = figures.figure_7_1()
        gaps = [r.gap for r in rows]
        assert gaps == sorted(gaps)

    def test_higher_fanout_narrows_the_gap(self):
        # Figure 7-2 vs 7-1: "with a higher fan-out ratio this effect is
        # less marked".
        f24 = {r.height: r.gap for r in figures.figure_7_1()}
        f120 = {r.height: r.gap for r in figures.figure_7_2()}
        for h in range(2, 10):
            assert f120[h] < f24[h]

    def test_integer_constrained_gap_at_least_as_wide(self):
        smooth = {r.height: r.worst_log_f for r in figures.figure_7_1()}
        integer = {
            r.height: r.worst_log_f
            for r in figures.figure_7_1(integer_constrained=True)
        }
        for h in range(1, 10):
            assert integer[h] <= smooth[h] + 1e-9


class TestHeightGrowthTable:
    def test_paper_readings_f24(self):
        table = dict(figures.height_growth_table(24, range(1, 6)))
        assert table[3] == 4
        assert table[4] == 6
        assert table[5] in (9, 10)

    def test_paper_readings_f120(self):
        table = dict(figures.height_growth_table(120, range(1, 7)))
        assert table[4] == 5
        assert table[6] in (8, 9)


class TestRendering:
    def test_render_contains_all_heights(self):
        text = figures.render_figure(figures.figure_7_1(), 24)
        for h in range(1, 10):
            assert f"h={h}" in text
        assert "F = 24" in text
