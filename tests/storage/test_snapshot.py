"""Tests for JSON snapshot persistence."""

import io
import json
import random

import pytest

from repro.errors import ReproError
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.storage.snapshot import dump_tree, dumps_tree, load_tree, loads_tree
from tests.conftest import make_points


@pytest.fixture
def populated(unit2):
    tree = BVTree(unit2, data_capacity=6, fanout=6)
    for i, p in enumerate(make_points(700, 2, seed=81)):
        tree.insert(p, i, replace=True)
    return tree


class TestRoundTrip:
    def test_records_survive(self, populated):
        clone = loads_tree(dumps_tree(populated))
        assert len(clone) == len(populated)
        for point, value in populated.items():
            assert clone.get(point) == value

    def test_structure_survives(self, populated):
        clone = loads_tree(dumps_tree(populated))
        original = populated.tree_stats()
        restored = clone.tree_stats()
        assert restored.height == original.height
        assert restored.data_pages == original.data_pages
        assert restored.index_nodes == original.index_nodes
        assert restored.total_guards == original.total_guards
        assert sorted(restored.data_occupancies) == sorted(
            original.data_occupancies
        )

    def test_clone_is_independent_and_mutable(self, populated):
        clone = loads_tree(dumps_tree(populated))
        clone.insert((0.987654, 0.123456), "fresh")
        assert clone.contains((0.987654, 0.123456))
        assert not populated.contains((0.987654, 0.123456))
        points = [p for p, _ in clone.items()][:100]
        for p in points:
            clone.delete(p)
        clone.check(check_occupancy=False)

    def test_search_guarantee_preserved(self, populated):
        clone = loads_tree(dumps_tree(populated))
        for p in make_points(30, 2, seed=82):
            assert clone.search(p).nodes_visited == clone.height + 1

    def test_file_round_trip(self, populated, tmp_path):
        path = tmp_path / "tree.json"
        with open(path, "w") as fp:
            dump_tree(populated, fp)
        with open(path) as fp:
            clone = load_tree(fp)
        assert len(clone) == len(populated)

    def test_empty_tree(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        clone = loads_tree(dumps_tree(tree))
        assert len(clone) == 0
        assert clone.height == 0

    def test_custom_space_and_policy(self):
        space = DataSpace([(-10.0, 10.0), (0.0, 5.0)], resolution=14)
        tree = BVTree(
            space, data_capacity=5, fanout=7, policy="uniform", page_bytes=512
        )
        rng = random.Random(83)
        for i in range(300):
            tree.insert((rng.uniform(-10, 10), rng.uniform(0, 5)), i)
        clone = loads_tree(dumps_tree(tree))
        assert clone.space == space
        assert clone.policy.fanout == 7
        assert clone.policy.kind == "uniform"
        assert len(clone) == 300


class TestValidation:
    def test_rejects_wrong_version(self, populated):
        snapshot = json.loads(dumps_tree(populated))
        snapshot["format"] = 99
        with pytest.raises(ReproError):
            loads_tree(json.dumps(snapshot))

    def test_rejects_dangling_entry(self, populated):
        snapshot = json.loads(dumps_tree(populated))
        for page in snapshot["pages"]:
            if page["kind"] == "index":
                page["entries"][0]["page"] = 999_999
                break
        with pytest.raises(ReproError):
            loads_tree(json.dumps(snapshot))

    def test_rejects_missing_root(self, populated):
        snapshot = json.loads(dumps_tree(populated))
        snapshot["root_page"] = 999_999
        with pytest.raises(ReproError):
            loads_tree(json.dumps(snapshot))

    def test_values_must_be_jsonable(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        tree.insert((0.5, 0.5), object())
        with pytest.raises(TypeError):
            dumps_tree(tree)


class TestColumnarRoundTrip:
    """Snapshots preserve the page layout, not just the records."""

    @pytest.fixture
    def columnar(self, unit2):
        from repro.storage.pager import ColumnarStore

        tree = BVTree(unit2, data_capacity=6, fanout=6, store=ColumnarStore())
        for i, p in enumerate(make_points(700, 2, seed=81)):
            tree.insert(p, i, replace=True)
        return tree

    def test_layout_and_records_survive(self, columnar):
        clone = loads_tree(dumps_tree(columnar))
        assert clone.layout == "columnar"
        from repro.core.columnar import ColumnarDataPage

        assert len(clone) == len(columnar)
        for point, value in columnar.items():
            assert clone.get(point) == value
        # The restored pages really are columnar, root down.
        found = clone.search(next(iter(dict(columnar.items()))))
        assert isinstance(clone.store.read(found.entry.page), ColumnarDataPage)

    def test_structure_identical_to_object_clone(self, columnar):
        clone = loads_tree(dumps_tree(columnar))
        original = columnar.tree_stats()
        restored = clone.tree_stats()
        assert restored.height == original.height
        assert restored.data_pages == original.data_pages
        assert restored.index_nodes == original.index_nodes
        assert restored.total_guards == original.total_guards
        clone.check(check_owners=True, check_occupancy=False)

    def test_clone_stays_mutable(self, columnar):
        clone = loads_tree(dumps_tree(columnar))
        clone.insert((0.987654, 0.123456), "fresh")
        assert clone.contains((0.987654, 0.123456))
        for p in [p for p, _ in clone.items()][:100]:
            clone.delete(p)
        clone.check(check_occupancy=False)

    def test_object_snapshots_still_load_as_object(self, populated):
        snapshot = json.loads(dumps_tree(populated))
        assert snapshot["layout"] == "object"
        # A pre-layout snapshot (older writer) defaults to object.
        del snapshot["layout"]
        clone = loads_tree(json.dumps(snapshot))
        assert clone.layout == "object"
        assert len(clone) == len(populated)
