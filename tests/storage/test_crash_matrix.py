"""The crash matrix: every crash point crossed with every workload.

Each cell drives one workload over a durable tree until an injected
fault kills the process mid-operation (or mid-checkpoint), recovers the
directory, and verifies recovery against a *differential shadow
oracle*:

- the committed operations reported by recovery form an **exact prefix**
  of the operations actually driven — no committed op lost, no
  uncommitted op leaked;
- replaying exactly that prefix into a fresh in-memory tree yields the
  same record set, the same count, and the same query answers as the
  recovered tree;
- the recovered tree passes the structural checker (occupancy and
  justification relaxed, as for any tree without operation history);
- recovering a second time changes nothing (idempotence).

The fast matrix (36 cells) runs in the default test lane; two oversized
cells are marked ``slow`` for the CI cron lane.
"""

import itertools

import pytest

from repro.core.tree import BVTree
from repro.errors import SimulatedCrashError
from repro.geometry.space import DataSpace
from repro.storage.durable.recovery import (
    create_durable_tree,
    open_durable_tree,
)
from repro.storage.faults import FaultPlan
from repro.workloads import (
    churn,
    clustered,
    grow_shrink,
    nested_hotspot,
    sequential_1d,
    uniform,
)

#: Tree operations that commit one WAL transaction each.
NAMED_OPS = ("insert", "delete", "bulk_load")

DIMS = 2
RESOLUTION = 16
CAPACITY = 4
FANOUT = 4


def dedup_by_path(points, space):
    """Drop points whose tree path collides with an earlier one."""
    seen = set()
    out = []
    for point in points:
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            out.append(tuple(point))
    return out


def make_space():
    return DataSpace.unit(DIMS, resolution=RESOLUTION)


# ----------------------------------------------------------------------
# Workloads: every cell drives a list of ("insert"|"delete", point, value)
# ----------------------------------------------------------------------


def _ops_from_points(points):
    return [("insert", p, i) for i, p in enumerate(points)]


def _ops_from_stream(stream):
    ops = []
    value = 0
    for verb, point in stream:
        ops.append((verb, point, value if verb == "insert" else None))
        value += 1
    return ops


def workload_uniform(space, n):
    return _ops_from_points(dedup_by_path(uniform(n, DIMS, seed=11), space))


def workload_clustered(space, n):
    return _ops_from_points(
        dedup_by_path(clustered(n, DIMS, clusters=4, seed=12), space)
    )


def workload_hotspot(space, n):
    return _ops_from_points(
        dedup_by_path(nested_hotspot(n, DIMS, seed=13), space)
    )


def workload_sequential(space, n):
    return _ops_from_points(
        dedup_by_path(sequential_1d(n, ndim=DIMS), space)
    )


def workload_churn(space, n):
    points = dedup_by_path(uniform(n, DIMS, seed=14), space)
    return _ops_from_stream(churn(points, delete_fraction=0.3, seed=14))


def workload_grow_shrink(space, n):
    points = dedup_by_path(uniform(n, DIMS, seed=15), space)
    return _ops_from_stream(grow_shrink(points, shrink_to=0.25, seed=15))


WORKLOADS = {
    "uniform": workload_uniform,
    "clustered": workload_clustered,
    "hotspot": workload_hotspot,
    "sequential": workload_sequential,
    "churn": workload_churn,
    "grow_shrink": workload_grow_shrink,
}


# ----------------------------------------------------------------------
# Crash scenarios
# ----------------------------------------------------------------------


class Scenario:
    """One column of the matrix: a fault plan plus driver behaviour."""

    def __init__(
        self,
        name,
        plan_kwargs,
        sync="os",
        checkpoint_at=None,
        crash_in_checkpoint=False,
    ):
        self.name = name
        self.plan_kwargs = plan_kwargs
        self.sync = sync
        #: Operation index at which the driver calls checkpoint()
        #: (None = never).
        self.checkpoint_at = checkpoint_at
        #: True when the crash point is inside that checkpoint call —
        #: every driven op is then committed.
        self.crash_in_checkpoint = crash_in_checkpoint

    def plan(self):
        return FaultPlan(**self.plan_kwargs)


SCENARIOS = {
    "early-keep": Scenario(
        "early-keep", {"crash_after_appends": 19, "tail": "keep"}
    ),
    "mid-torn": Scenario(
        "mid-torn",
        {"crash_after_appends": 67, "tail": "torn", "torn_fraction": 0.5},
    ),
    "late-torn": Scenario(
        "late-torn",
        {"crash_after_appends": 131, "tail": "torn", "torn_fraction": 0.2},
    ),
    "commit-drop": Scenario(
        "commit-drop",
        {"crash_after_appends": 83, "tail": "drop_unsynced"},
        sync="commit",
    ),
    "ckpt-mid-write": Scenario(
        "ckpt-mid-write",
        {"crash_in_checkpoint": "mid_write"},
        checkpoint_at=40,
        crash_in_checkpoint=True,
    ),
    "ckpt-before-truncate": Scenario(
        "ckpt-before-truncate",
        {"crash_in_checkpoint": "before_truncate"},
        checkpoint_at=40,
        crash_in_checkpoint=True,
    ),
}


# ----------------------------------------------------------------------
# The driver and the differential oracle
# ----------------------------------------------------------------------


def apply_op(tree, op):
    verb, point, value = op
    if verb == "insert":
        tree.insert(point, value, replace=True)
    else:
        tree.delete(point)


def drive_until_crash(tree, store, ops, scenario):
    """Apply ops until the fault fires.

    Returns ``(driven_ops, in_flight_op, ckpt_index)``: the operations
    that *returned* before the crash, the one that raised (its commit
    record may or may not have reached disk — the classic
    committed-but-unacknowledged window), and how many driven ops a
    successfully *installed* checkpoint had absorbed (None when no
    checkpoint was installed).
    """
    driven = []
    ckpt_index = None
    for index, op in enumerate(ops):
        if scenario.checkpoint_at is not None and index == scenario.checkpoint_at:
            try:
                store.checkpoint()
            except SimulatedCrashError:
                # mid_write leaves the old image; before_truncate has
                # already installed the new one.
                if scenario.plan_kwargs.get("crash_in_checkpoint") == (
                    "before_truncate"
                ):
                    ckpt_index = len(driven)
                return driven, None, ckpt_index
            ckpt_index = len(driven)
        try:
            apply_op(tree, op)
        except SimulatedCrashError:
            return driven, op, ckpt_index
        driven.append(op)
    pytest.fail("fault plan never fired; the cell tested nothing")


def shadow_replay(ops):
    """The expected tree: the same op prefix over the in-memory backend."""
    tree = BVTree(
        make_space(),
        data_capacity=CAPACITY,
        fanout=FANOUT,
    )
    for op in ops:
        apply_op(tree, op)
    return tree


def assert_trees_equal(recovered, expected):
    assert recovered.count == expected.count
    assert sorted(recovered.items()) == sorted(expected.items())
    box = ((0.1,) * DIMS, (0.8,) * DIMS)
    assert sorted(recovered.range_query(*box).records) == sorted(
        expected.range_query(*box).records
    )
    recovered.check(check_occupancy=False, check_justification=False)


def run_cell(tmp_path, workload_name, scenario_name, n_points):
    scenario = SCENARIOS[scenario_name]
    space = make_space()
    ops = WORKLOADS[workload_name](space, n_points)
    directory = tmp_path / f"{workload_name}-{scenario_name}"

    tree = create_durable_tree(
        directory,
        space,
        data_capacity=CAPACITY,
        fanout=FANOUT,
        faults=scenario.plan(),
        sync=scenario.sync,
    )
    driven, in_flight, ckpt_index = drive_until_crash(
        tree, tree.store, ops, scenario
    )
    assert tree.store.dead

    recovered, report = open_durable_tree(directory, sync="os")

    # --- The differential oracle -------------------------------------
    committed_names = [n for n in report.op_commits if n in NAMED_OPS]
    absorbed = ckpt_index if ckpt_index is not None else 0
    if scenario.crash_in_checkpoint:
        # The crash hit the checkpoint, not an operation: every driven
        # op committed.  Cross-check the report's accounting: ops the
        # installed checkpoint absorbed are stale, the rest replay.
        prefix_len = len(driven)
        assert absorbed + len(committed_names) == len(driven)
    else:
        prefix_len = absorbed + len(committed_names)
    # The in-flight op's commit record may have hit the log right
    # before the crash (committed but unacknowledged) — durability may
    # include it, but never anything beyond it.
    acknowledged_plus = list(driven) + (
        [in_flight] if in_flight is not None else []
    )
    assert prefix_len <= len(acknowledged_plus)
    # The committed operation names are exactly the names of the driven
    # prefix they claim to be (order included).
    assert committed_names == [
        verb for verb, _, _ in acknowledged_plus[absorbed:prefix_len]
    ]

    expected = shadow_replay(acknowledged_plus[:prefix_len])
    assert_trees_equal(recovered, expected)

    # --- Idempotence: recover the recovered directory ----------------
    recovered.store.close(checkpoint=False)
    again, report2 = open_durable_tree(directory, sync="os")
    assert sorted(again.items()) == sorted(expected.items())
    assert report2.records_uncommitted == 0
    again.store.close(checkpoint=False)


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------

MATRIX = sorted(itertools.product(WORKLOADS, SCENARIOS))


@pytest.mark.parametrize(("workload", "scenario"), MATRIX)
def test_crash_cell(tmp_path, workload, scenario):
    run_cell(tmp_path, workload, scenario, n_points=230)


@pytest.mark.slow
@pytest.mark.parametrize(
    ("workload", "scenario"),
    [("churn", "late-torn"), ("grow_shrink", "commit-drop")],
)
def test_crash_cell_large(tmp_path, workload, scenario):
    run_cell(tmp_path, workload, scenario, n_points=2500)


def test_matrix_is_at_least_thirty_cells():
    assert len(MATRIX) >= 30
