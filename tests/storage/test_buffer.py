"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import PageStore


@pytest.fixture
def pool():
    store = PageStore()
    return BufferPool(store, capacity=3)


class TestReadThrough:
    def test_miss_then_hit(self, pool):
        page = pool.store.allocate("x")
        assert pool.read(page) == "x"
        assert pool.read(page) == "x"
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_physical_reads_only_on_miss(self, pool):
        page = pool.store.allocate("x")
        for _ in range(5):
            pool.read(page)
        assert pool.store.stats.reads == 1

    def test_hit_ratio(self, pool):
        page = pool.store.allocate("x")
        pool.read(page)
        pool.read(page)
        pool.read(page)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)
        assert pool.stats.logical_reads == 3

    def test_hit_ratio_empty(self, pool):
        assert pool.stats.hit_ratio == 0.0


class TestLayoutPassthrough:
    def test_forwards_backing_store_layout(self):
        from repro.storage.pager import ColumnarStore

        assert BufferPool(PageStore()).layout == "object"
        assert BufferPool(ColumnarStore()).layout == "columnar"

    def test_tree_picks_layout_through_pool(self, unit2):
        from repro.core.tree import BVTree
        from repro.storage.pager import ColumnarStore

        tree = BVTree(unit2, store=BufferPool(ColumnarStore()))
        assert tree.layout == "columnar"


class TestEviction:
    def test_lru_eviction_order(self, pool):
        pages = [pool.store.allocate(i) for i in range(4)]
        for p in pages[:3]:
            pool.read(p)
        pool.read(pages[0])  # freshen page 0
        pool.read(pages[3])  # evicts page 1, the least recent
        assert pool.resident(pages[0])
        assert not pool.resident(pages[1])
        assert pool.resident(pages[2])
        assert pool.resident(pages[3])
        assert pool.stats.evictions == 1

    def test_capacity_respected(self, pool):
        for i in range(10):
            pool.read(pool.store.allocate(i))
        assert len(pool) == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(StorageError):
            BufferPool(PageStore(), capacity=0)


class TestWriteThrough:
    def test_write_updates_store_and_cache(self, pool):
        page = pool.store.allocate("x")
        pool.write(page, "y")
        assert pool.store.read(page) == "y"
        assert pool.read(page) == "y"
        assert pool.stats.misses == 0  # cached by the write

    def test_invalidate(self, pool):
        page = pool.store.allocate("x")
        pool.read(page)
        pool.store.free(page)
        pool.invalidate(page)
        assert not pool.resident(page)

    def test_invalidate_counts_only_resident_pages(self, pool):
        page = pool.store.allocate("x")
        pool.read(page)
        pool.invalidate(page)
        assert pool.stats.invalidations == 1
        # The page is no longer cached: further calls are no-ops and
        # must not inflate the counter.
        pool.invalidate(page)
        pool.invalidate(12345)
        assert pool.stats.invalidations == 1

    def test_invalidate_counts_cached_none_payload(self, pool):
        page = pool.allocate(None)  # cached by allocation, content None
        pool.invalidate(page)
        assert pool.stats.invalidations == 1


class TestPeek:
    def test_peek_serves_cache_without_counting(self, pool):
        page = pool.store.allocate("x")
        pool.read(page)
        hits, misses = pool.stats.hits, pool.stats.misses
        assert pool.peek(page) == "x"
        assert (pool.stats.hits, pool.stats.misses) == (hits, misses)

    def test_peek_miss_does_not_install_or_count(self, pool):
        page = pool.store.allocate("x")
        physical = pool.store.stats.reads
        assert pool.peek(page) == "x"
        assert not pool.resident(page)
        assert pool.store.stats.reads == physical
        assert pool.stats.misses == 0

    def test_peek_does_not_refresh_recency(self, pool):
        pages = [pool.store.allocate(i) for i in range(4)]
        for p in pages[:3]:
            pool.read(p)
        pool.peek(pages[0])  # must NOT freshen page 0
        pool.read(pages[3])  # evicts page 0, still the least recent
        assert not pool.resident(pages[0])
        assert pool.resident(pages[1])

    def test_peek_distinguishes_cached_none(self, pool):
        page = pool.allocate(None)
        store_reads = pool.store.stats.reads
        assert pool.peek(page) is None
        assert pool.store.stats.reads == store_reads

    def test_clear(self, pool):
        page = pool.store.allocate("x")
        pool.read(page)
        pool.clear()
        assert len(pool) == 0
        pool.read(page)
        assert pool.stats.misses == 2
