"""Edge-case tests for the storage stat records themselves.

The behavioural paths (pager counts reads, pool counts hits) are covered
in ``test_pager.py``/``test_buffer.py``; these tests pin the record
semantics the observability layer leans on: snapshot/delta round-trips,
delta across a ``reset()``, and the hit-ratio denominator cases.
"""

from repro.storage.stats import BufferStats, IOStats


class TestIOStatsDelta:
    def test_delta_of_identical_snapshots_is_zero(self):
        stats = IOStats(reads=5, writes=3, allocations=2, frees=1)
        delta = stats.delta(stats.snapshot())
        assert (delta.reads, delta.writes, delta.allocations, delta.frees) == (
            0,
            0,
            0,
            0,
        )

    def test_delta_measures_only_the_window(self):
        stats = IOStats()
        stats.reads += 4
        before = stats.snapshot()
        stats.reads += 2
        stats.writes += 1
        delta = stats.delta(before)
        assert delta.reads == 2
        assert delta.writes == 1
        # The snapshot is an independent copy, not an alias.
        assert before.reads == 4

    def test_delta_across_reset_goes_negative(self):
        stats = IOStats(reads=7)
        before = stats.snapshot()
        stats.reset()
        stats.reads += 2
        # Documented semantics: diff only monotone samples; a reset in
        # the window shows up as a negative component, not a crash.
        assert stats.delta(before).reads == -5

    def test_total_sums_all_channels(self):
        stats = IOStats(reads=1, writes=2, allocations=3, frees=4)
        assert stats.total == 10


class TestBufferStatsHitRatio:
    def test_zero_logical_reads_is_zero_not_nan(self):
        stats = BufferStats()
        assert stats.logical_reads == 0
        assert stats.hit_ratio == 0.0

    def test_all_misses(self):
        stats = BufferStats(misses=4)
        assert stats.hit_ratio == 0.0

    def test_all_hits(self):
        stats = BufferStats(hits=4)
        assert stats.hit_ratio == 1.0

    def test_mixed(self):
        stats = BufferStats(hits=3, misses=1)
        assert stats.logical_reads == 4
        assert stats.hit_ratio == 0.75

    def test_reset_restores_the_empty_denominator(self):
        stats = BufferStats(hits=3, misses=1)
        stats.reset()
        assert stats.hit_ratio == 0.0
