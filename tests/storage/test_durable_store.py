"""Unit tests of :class:`DurableStore`: logging, transactions, liveness."""

import os

import pytest

from repro.core.node import DataPage
from repro.core.tree import BVTree
from repro.errors import SimulatedCrashError, StorageError
from repro.geometry.space import DataSpace
from repro.obs.events import OP_BEGIN, OP_END
from repro.obs.tracer import Tracer
from repro.storage.durable.recovery import recover_store
from repro.storage.durable.store import (
    PAGEFILE_NAME,
    WAL_NAME,
    DurableStore,
)
from repro.storage.durable.wal import (
    REC_COMMIT_FLAG,
    REC_WRITE,
    base_type,
    scan_wal,
)
from repro.storage.faults import FaultPlan
from repro.storage.pager import PageStore


def wal_records(store):
    store._wal.flush()
    return scan_wal(store.wal_path).records


def data_page(*records):
    page = DataPage()
    for path, point, value in records:
        page.insert(path, point, value)
    return page


class TestConstruction:
    def test_unknown_sync_mode_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            DurableStore(tmp_path / "s", sync="eventually")

    @pytest.mark.parametrize("existing", [WAL_NAME, PAGEFILE_NAME])
    def test_refuses_directory_with_store_files(self, tmp_path, existing):
        (tmp_path / existing).write_bytes(b"")
        with pytest.raises(StorageError, match="recover_store"):
            DurableStore(tmp_path)

    def test_creates_wal_in_fresh_directory(self, tmp_path):
        store = DurableStore(tmp_path / "fresh")
        assert os.path.exists(store.wal_path)
        assert not os.path.exists(store.pagefile_path)
        store.close(checkpoint=False)


class TestLogging:
    def test_every_mutation_reaches_the_wal(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        page_id = store.allocate(data_page((1, (0.5,), "a")))
        store.write(page_id, data_page((1, (0.5,), "a"), (2, (0.25,), "b")))
        store.free(page_id)
        names = [base_type(rtype) for _, rtype, _ in wal_records(store)]
        # alloc, write, free (plus the size-class record from __init__'s
        # register_size_class is absent — the store registers none here).
        assert len(names) == 3
        store.close(checkpoint=False)

    def test_second_write_logs_a_delta(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        page = data_page((1, (0.5,), "a"))
        page_id = store.allocate(page)
        page.insert(2, (0.25,), "b")
        store.write(page_id, page)
        records = wal_records(store)
        alloc_payload = records[0][2]
        write_payload = records[1][2]
        assert "dk" not in alloc_payload
        assert write_payload["dk"] == 1
        assert write_payload["p"] == [2]
        store.close(checkpoint=False)

    def test_unchanged_write_logs_nothing(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        page = data_page((1, (0.5,), "a"))
        page_id = store.allocate(page)
        before = store.wal_stats.appends
        store.write(page_id, page)
        assert store.wal_stats.appends == before
        store.close(checkpoint=False)

    def test_delta_records_removals(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        page = data_page((1, (0.5,), "a"), (2, (0.25,), "b"))
        page_id = store.allocate(page)
        del page.records[1]
        store.write(page_id, page)
        assert wal_records(store)[-1][2]["r"] == [1]
        store.close(checkpoint=False)

    def test_size_class_registered_once(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        store.register_size_class(1, 2048)
        store.register_size_class(1, 2048)
        classes = [
            payload
            for _, rtype, payload in wal_records(store)
            if base_type(rtype) == 4  # REC_CLASS
        ]
        assert len(classes) == 1
        store.close(checkpoint=False)


class TestTransactions:
    def build_tree(self, tmp_path, **kwargs):
        store = DurableStore(tmp_path, sync=kwargs.pop("sync", "os"), **kwargs)
        space = DataSpace.unit(2, resolution=16)
        return BVTree(space, data_capacity=4, fanout=4, store=store), store

    def test_one_commit_per_tree_operation(self, tmp_path):
        tree, store = self.build_tree(tmp_path)
        base = store.wal_stats.commits
        for i in range(8):
            tree.insert((0.1 + i / 16, 0.2), i)
        assert store.wal_stats.commits == base + 8
        flagged = [
            payload
            for _, rtype, payload in wal_records(store)
            if rtype & REC_COMMIT_FLAG
        ]
        assert all(p["op"] in ("insert", "auto") for p in flagged)
        assert [p["op"] for p in flagged[-8:]] == ["insert"] * 8
        store.close(checkpoint=False)

    def test_mutations_outside_spans_auto_commit(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        store.allocate(data_page((1, (0.5,), "a")))
        [(_, rtype, payload)] = wal_records(store)
        assert rtype & REC_COMMIT_FLAG
        assert payload["op"] == "auto"
        store.close(checkpoint=False)

    def test_failed_operation_writes_nothing(self, tmp_path):
        tree, store = self.build_tree(tmp_path)
        tree.insert((0.5, 0.5), "kept")
        length_before = store._wal.length
        tracer = store.tracer
        op = tracer._next_op()
        tracer.emit(OP_BEGIN, name="insert")
        # Simulate the mutation the span would have made, then fail it.
        store.tracer.current_op = op
        store._begin_op(op)
        page = data_page((9, (0.9, 0.9), "doomed"))
        store.allocate(page)
        store._end_op(op, "insert", error=True)
        assert store._wal.length == length_before
        store.close(checkpoint=False)
        # Only the committed insert survives recovery.
        recovered, report = recover_store(tmp_path, sync="os")
        assert report.op_commits.count("insert") == 1
        recovered.close(checkpoint=False)

    def test_sync_commit_fsyncs_every_commit(self, tmp_path):
        tree, store = self.build_tree(tmp_path, sync="commit")
        for i in range(4):
            tree.insert((0.1 + i / 8, 0.3), i)
        assert store.wal_stats.syncs >= 4
        store.close(checkpoint=False)

    def test_tap_follows_tracer_rebinding(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        old = store.tracer
        new = Tracer()
        store.tracer = new
        assert store._op_tap in new.taps
        assert store._op_tap not in old.taps
        assert new.structural
        store.close(checkpoint=False)

    def test_op_tap_declares_its_kinds(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        assert store._op_tap.kinds == frozenset({OP_BEGIN, OP_END})
        store.close(checkpoint=False)


class TestCheckpoint:
    def test_checkpoint_installs_pagefile_and_resets_wal(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        store.allocate(data_page((1, (0.5,), "a")))
        store.checkpoint()
        assert os.path.exists(store.pagefile_path)
        assert wal_records(store) == []
        store.close(checkpoint=False)

    def test_meta_survives_recovery(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        store.set_meta("answer", 42)
        store.close(checkpoint=True)
        recovered, report = recover_store(tmp_path)
        assert recovered.meta["answer"] == 42
        assert report.had_checkpoint
        recovered.close(checkpoint=False)

    def test_close_without_checkpoint_leaves_wal_as_record(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        store.allocate(data_page((1, (0.5,), "a")))
        store.close(checkpoint=False)
        assert not os.path.exists(
            os.path.join(str(tmp_path), PAGEFILE_NAME)
        )
        assert len(scan_wal(os.path.join(str(tmp_path), WAL_NAME)).records) == 1


class TestLiveness:
    def crashed_store(self, tmp_path):
        store = DurableStore(
            tmp_path,
            faults=FaultPlan(crash_after_appends=2),
            sync="os",
        )
        page_id = store.allocate(data_page((1, (0.5,), "a")))
        with pytest.raises(SimulatedCrashError):
            store.allocate(data_page((2, (0.25,), "b")))
        return store, page_id

    def test_dead_store_refuses_every_access(self, tmp_path):
        store, page_id = self.crashed_store(tmp_path)
        assert store.dead
        for call in (
            lambda: store.read(page_id),
            lambda: store.peek(page_id),
            lambda: store.write(page_id, DataPage()),
            lambda: store.allocate(DataPage()),
            lambda: store.free(page_id),
            lambda: store.set_meta("k", 1),
            store.checkpoint,
            lambda: list(store.page_ids()),
        ):
            with pytest.raises(StorageError, match="recover_store"):
                call()

    def test_dead_store_close_is_a_noop(self, tmp_path):
        store, _ = self.crashed_store(tmp_path)
        store.close()  # must not raise, must not checkpoint
        assert not os.path.exists(store.pagefile_path)

    def test_closed_store_refuses_reads(self, tmp_path):
        store = DurableStore(tmp_path, sync="os")
        page_id = store.allocate(data_page((1, (0.5,), "a")))
        store.close()
        with pytest.raises(StorageError, match="closed"):
            store.read(page_id)
        store.close()  # idempotent


class TestEquivalenceWithPageStore:
    def test_same_page_protocol_results(self, tmp_path):
        durable = DurableStore(tmp_path, sync="os")
        memory = PageStore()
        ids = []
        for backend in (durable, memory):
            a = backend.allocate(data_page((1, (0.5, 0.5), "a")))
            b = backend.allocate(None)
            backend.write(b, data_page((2, (0.25, 0.75), "b")))
            backend.free(a)
            ids.append((a, b))
        assert ids[0] == ids[1]
        assert durable.read(ids[0][1]).records == memory.read(ids[1][1]).records
        assert list(durable.page_ids()) == list(memory.page_ids())
        durable.close(checkpoint=False)


class TestColumnarDurability:
    """Columnar trees persist and recover as columnar trees."""

    def _populate(self, tree, n=250):
        pts = []
        for i in range(n):
            p = ((i * 37 % 128) / 128, (i * 101 % 128) / 128)
            tree.insert(p, i, replace=True)
            pts.append((p, i))
        return {p: v for p, v in pts}

    def test_round_trip_after_close(self, tmp_path):
        from repro.core.columnar import ColumnarDataPage, ColumnarIndexNode
        from repro.storage.durable.recovery import (
            create_durable_tree,
            open_durable_tree,
        )

        space = DataSpace.unit(2, resolution=7)
        tree = create_durable_tree(
            tmp_path / "col",
            space,
            data_capacity=8,
            fanout=8,
            layout="columnar",
        )
        model = self._populate(tree)
        assert tree.layout == "columnar"
        tree.store.close()

        recovered, report = open_durable_tree(tmp_path / "col")
        assert recovered.layout == "columnar"
        assert len(recovered) == len(model)
        for p, v in model.items():
            assert recovered.get(p) == v
        root = recovered.store.read(recovered.root_page)
        assert isinstance(root, (ColumnarDataPage, ColumnarIndexNode))
        recovered.check(check_owners=True, check_occupancy=False)
        recovered.store.close(checkpoint=False)

    def test_recovery_without_checkpoint_replays_columnar_wal(self, tmp_path):
        from repro.storage.durable.recovery import (
            create_durable_tree,
            open_durable_tree,
        )

        space = DataSpace.unit(2, resolution=7)
        tree = create_durable_tree(
            tmp_path / "col", space, data_capacity=8, fanout=8,
            layout="columnar", sync="os",
        )
        model = self._populate(tree, n=120)
        # Abandon the store without closing: recovery replays the WAL.
        # Without the close-time flush, the tail of the log may still sit
        # in a userspace buffer — durability is a committed *prefix* of
        # the operation sequence, same contract the crash matrix checks.
        tree.store._dead = True  # type: ignore[attr-defined]

        recovered, report = open_durable_tree(tmp_path / "col", sync="os")
        assert recovered.layout == "columnar"
        survivors = len(recovered)
        assert 0 < survivors <= len(model)
        for p, v in list(model.items())[:survivors]:
            assert recovered.get(p) == v
        recovered.check(check_owners=True, check_occupancy=False)
        recovered.store.close(checkpoint=False)
