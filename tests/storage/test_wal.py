"""Unit tests of the write-ahead log: framing, scanning, crash tails."""

import os
import struct

import pytest

from repro.errors import SimulatedCrashError, StorageError, WalCorruptionError
from repro.storage.durable import codec
from repro.storage.durable.wal import (
    REC_ALLOC,
    REC_COMMIT,
    REC_COMMIT_FLAG,
    REC_META,
    REC_WRITE,
    WAL_MAGIC,
    WriteAheadLog,
    base_type,
    iter_frames,
    pack_record,
    scan_wal,
)
from repro.storage.faults import FaultPlan


def make_wal(tmp_path, **fault_kwargs):
    plan = FaultPlan(**fault_kwargs) if fault_kwargs else FaultPlan()
    return WriteAheadLog(tmp_path / "wal.log", plan)


class TestFraming:
    def test_pack_and_iter_round_trip(self):
        buf = b"".join(
            pack_record(seq, REC_WRITE, {"id": seq, "x": 1})
            for seq in (1, 2, 3)
        )
        records = list(iter_frames(buf))
        assert [seq for seq, _, _, _ in records] == [1, 2, 3]
        assert records[0][2] == {"id": 1, "x": 1}
        assert records[-1][3] == len(buf)

    def test_iter_stops_at_short_frame(self):
        buf = pack_record(1, REC_WRITE, {"id": 1}) + b"\x07\x00"
        assert len(list(iter_frames(buf))) == 1

    def test_iter_stops_at_bad_crc(self):
        good = pack_record(1, REC_WRITE, {"id": 1})
        bad = bytearray(pack_record(2, REC_WRITE, {"id": 2}))
        bad[-6] ^= 0xFF  # flip a payload byte; the CRC no longer matches
        tail = pack_record(3, REC_WRITE, {"id": 3})
        records = list(iter_frames(good + bytes(bad) + tail))
        assert [seq for seq, _, _, _ in records] == [1]

    def test_commit_flag_rides_the_type_byte(self):
        flagged = REC_WRITE | REC_COMMIT_FLAG
        assert base_type(flagged) == REC_WRITE
        assert base_type(REC_WRITE) == REC_WRITE
        buf = pack_record(1, flagged, {"id": 1, "op": "insert"})
        [(_, rtype, payload, _)] = list(iter_frames(buf))
        assert rtype == flagged
        assert payload["op"] == "insert"

    def test_undecodable_payload_ends_the_scan(self):
        header = struct.pack("<IIB", 3, 1, REC_WRITE)
        body = b"not"
        import zlib

        crc = struct.pack(
            "<I", zlib.crc32(body, zlib.crc32(header)) & 0xFFFFFFFF
        )
        assert list(iter_frames(header + body + crc)) == []


class TestScan:
    def test_missing_file_is_an_empty_log(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.log")
        assert scan.records == []
        assert not scan.torn

    def test_empty_file_is_an_empty_log(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        assert scan_wal(path).records == []

    def test_partial_magic_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(WAL_MAGIC[:3])
        scan = scan_wal(path)
        assert scan.records == []
        assert scan.torn
        assert scan.discarded_bytes == 3

    def test_foreign_file_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"definitely not a WAL of ours")
        with pytest.raises(WalCorruptionError):
            scan_wal(path)

    def test_scan_accepts_any_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        records = [
            pack_record(seq, REC_META, {"key": "k", "v": seq, "x": seq})
            for seq in range(1, 6)
        ]
        full = WAL_MAGIC + b"".join(records)
        boundary = len(WAL_MAGIC) + sum(len(r) for r in records[:3])
        for cut in (boundary, boundary + 1, boundary + len(records[3]) - 1):
            path.write_bytes(full[:cut])
            scan = scan_wal(path)
            assert len(scan.records) == 3
            assert scan.torn == (cut != boundary)
        path.write_bytes(full)
        assert scan_wal(path).last_seq == 5


class TestWriteAheadLog:
    def test_append_assigns_increasing_seq(self, tmp_path):
        wal = make_wal(tmp_path)
        assert wal.append(REC_ALLOC, {"id": 1}) == 1
        assert wal.append(REC_WRITE, {"id": 1}) == 2
        assert wal.seq == 2
        wal.close()
        scan = scan_wal(wal.path)
        assert [seq for seq, _, _ in scan.records] == [1, 2]

    def test_appends_are_buffered_until_flush(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(REC_META, {"key": "a", "v": 1})
        assert os.path.getsize(wal.path) < wal.length
        wal.flush()
        assert os.path.getsize(wal.path) == wal.length
        wal.close()

    def test_stats_count_commits_via_flag(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(REC_WRITE, {"id": 1})
        wal.append(REC_WRITE | REC_COMMIT_FLAG, {"id": 1, "op": "insert"})
        wal.append(REC_COMMIT, {"x": 2})
        assert wal.stats.appends == 3
        assert wal.stats.commits == 2
        wal.close()

    def test_start_seq_continues_numbering(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", FaultPlan(), start_seq=40)
        assert wal.append(REC_META, {"key": "k", "v": 0}) == 41
        wal.close()

    def test_reset_truncates_but_seq_survives(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(REC_WRITE, {"id": 1})
        wal.append(REC_WRITE, {"id": 2})
        wal.reset()
        assert os.path.getsize(wal.path) == len(WAL_MAGIC)
        assert wal.append(REC_WRITE, {"id": 3}) == 3
        wal.close()
        assert [seq for seq, _, _ in scan_wal(wal.path).records] == [3]

    def test_closed_log_refuses_everything(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.close()
        wal.close()  # idempotent
        for call in (
            lambda: wal.append(REC_WRITE, {"id": 1}),
            wal.flush,
            wal.sync,
            wal.reset,
        ):
            with pytest.raises(StorageError):
                call()


class TestCrashTails:
    def three_records(self, wal):
        for seq in (1, 2, 3):
            wal.append(REC_META, {"key": "k", "v": seq, "x": seq})

    def test_crash_point_fires_on_the_nth_append(self, tmp_path):
        wal = make_wal(tmp_path, crash_after_appends=2)
        wal.append(REC_META, {"key": "k", "v": 1})
        with pytest.raises(SimulatedCrashError):
            wal.append(REC_META, {"key": "k", "v": 2})
        assert wal.closed
        assert len(scan_wal(wal.path).records) == 2  # tail=keep

    def test_torn_tail_cuts_the_final_record(self, tmp_path):
        wal = make_wal(
            tmp_path, crash_after_appends=3, tail="torn", torn_fraction=0.5
        )
        with pytest.raises(SimulatedCrashError):
            self.three_records(wal)
        scan = scan_wal(wal.path)
        assert len(scan.records) == 2
        assert scan.torn
        assert 0 < scan.discarded_bytes

    def test_drop_unsynced_keeps_only_the_synced_prefix(self, tmp_path):
        wal = make_wal(
            tmp_path, crash_after_appends=3, tail="drop_unsynced"
        )
        wal.append(REC_META, {"key": "k", "v": 1, "x": 1})
        wal.sync()
        with pytest.raises(SimulatedCrashError):
            wal.append(REC_META, {"key": "k", "v": 2, "x": 2})
            wal.append(REC_META, {"key": "k", "v": 3, "x": 3})
        scan = scan_wal(wal.path)
        assert [p["v"] for _, _, p in scan.records] == [1]
        assert not scan.torn  # the cut is at a record boundary

    def test_lying_fsync_never_advances_the_watermark(self, tmp_path):
        wal = make_wal(
            tmp_path,
            crash_after_appends=2,
            tail="drop_unsynced",
            drop_fsync=True,
        )
        wal.append(REC_META, {"key": "k", "v": 1, "x": 1})
        wal.sync()
        assert wal.stats.syncs_dropped == 1
        with pytest.raises(SimulatedCrashError):
            wal.append(REC_META, {"key": "k", "v": 2, "x": 2})
        assert scan_wal(wal.path).records == []


class TestCodecRoundTrips:
    def test_delta_body_matches_generic_encoding(self):
        base = {3: ((0.25, 0.5), "a")}
        current = {
            3: ((0.25, 0.5), "a"),
            7: ((0.125, 0.75), 11),
        }
        body = codec.encode_data_delta_body(9, 4, base, current)
        payload = codec.loads(body)
        delta = codec.encode_data_delta(base, current)
        for key, value in delta.items():
            assert payload[key] == value
        assert payload["id"] == 9
        assert payload["x"] == 4

    def test_delta_encodes_non_finite_floats_exactly(self):
        inf = float("inf")
        body = codec.encode_data_delta_body(
            1, 1, {}, {5: ((inf, -0.0), None)}
        )
        page = codec.decode_content({"k": "data", "d": 2, "p": [], "v": [],
                                     "pts": ""})
        codec.apply_data_delta(page, codec.loads(body))
        (point, value) = page.records[5]
        assert point == (inf, -0.0)
        assert struct.pack("<d", point[1]) == struct.pack("<d", -0.0)

    def test_delta_removal_of_absent_path_is_corruption(self):
        page = codec.decode_content(
            {"k": "data", "d": 1, "p": [], "v": [], "pts": ""}
        )
        with pytest.raises(WalCorruptionError):
            codec.apply_data_delta(
                page, {"d": 1, "p": [], "v": [], "pts": "", "r": [9]}
            )

    def test_equal_maps_yield_no_delta(self):
        records = {1: ((0.5,), "v")}
        assert codec.encode_data_delta_body(1, 1, records, dict(records)) is None
        assert codec.encode_data_delta(records, dict(records)) is None

    def test_diff_detects_removals(self):
        base = {1: ((0.1,), "a"), 2: ((0.2,), "b")}
        current = {1: ((0.1,), "a")}
        added, removed = codec.diff_records(base, current)
        assert added == []
        assert removed == [2]
