"""Unit tests for the page store."""

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.storage.pager import PageStore


class TestLifecycle:
    def test_allocate_read_write(self):
        store = PageStore()
        page = store.allocate({"a": 1})
        assert store.read(page) == {"a": 1}
        store.write(page, {"a": 2})
        assert store.read(page) == {"a": 2}

    def test_ids_are_unique_and_never_reused(self):
        store = PageStore()
        a = store.allocate("a")
        store.free(a)
        b = store.allocate("b")
        assert a != b

    def test_free_removes(self):
        store = PageStore()
        page = store.allocate("x")
        store.free(page)
        assert page not in store
        with pytest.raises(PageNotFoundError):
            store.read(page)

    def test_read_unknown_page(self):
        with pytest.raises(PageNotFoundError):
            PageStore().read(42)

    def test_peek_reads_without_counting(self):
        store = PageStore()
        page = store.allocate("x")
        reads_before = store.stats.reads
        assert store.peek(page) == "x"
        assert store.stats.reads == reads_before

    def test_peek_unknown_page(self):
        with pytest.raises(PageNotFoundError):
            PageStore().peek(42)

    def test_write_unknown_page(self):
        with pytest.raises(PageNotFoundError):
            PageStore().write(42, "x")

    def test_free_unknown_page(self):
        with pytest.raises(PageNotFoundError):
            PageStore().free(42)

    def test_len_and_iteration(self):
        store = PageStore()
        ids = {store.allocate(i) for i in range(5)}
        assert len(store) == 5
        assert set(store.page_ids()) == ids

    def test_rejects_bad_page_size(self):
        with pytest.raises(StorageError):
            PageStore(page_bytes=0)


class TestAccounting:
    def test_io_counters(self):
        store = PageStore()
        page = store.allocate("x")
        store.read(page)
        store.read(page)
        store.write(page, "y")
        store.free(page)
        assert store.stats.allocations == 1
        assert store.stats.reads == 2
        assert store.stats.writes == 1
        assert store.stats.frees == 1
        assert store.stats.total == 5

    def test_snapshot_delta(self):
        store = PageStore()
        page = store.allocate("x")
        before = store.stats.snapshot()
        store.read(page)
        store.read(page)
        delta = store.stats.delta(before)
        assert delta.reads == 2
        assert delta.allocations == 0

    def test_reset(self):
        store = PageStore()
        store.allocate("x")
        store.stats.reset()
        assert store.stats.total == 0


class TestSizeClasses:
    def test_default_class_sizes_scale(self):
        store = PageStore(page_bytes=100)
        store.allocate("a", size_class=0)
        store.allocate("b", size_class=2)
        stats = store.class_stats()
        assert stats[0].page_bytes == 100
        assert stats[2].page_bytes == 300

    def test_registered_class_size(self):
        store = PageStore(page_bytes=100)
        store.register_size_class(3, 1234)
        store.allocate("x", size_class=3)
        assert store.class_stats()[3].page_bytes == 1234

    def test_reregister_conflicting_size_with_live_pages(self):
        store = PageStore()
        store.register_size_class(1, 100)
        store.allocate("x", size_class=1)
        with pytest.raises(StorageError):
            store.register_size_class(1, 200)

    def test_reregister_same_size_is_fine(self):
        store = PageStore()
        store.register_size_class(1, 100)
        store.allocate("x", size_class=1)
        store.register_size_class(1, 100)

    def test_live_pages_per_class(self):
        store = PageStore()
        a = store.allocate("a", size_class=0)
        store.allocate("b", size_class=0)
        store.allocate("c", size_class=1)
        assert store.live_pages() == 3
        assert store.live_pages(0) == 2
        assert store.live_pages(1) == 1
        assert store.live_pages(9) == 0
        store.free(a)
        assert store.live_pages(0) == 1

    def test_live_bytes(self):
        store = PageStore(page_bytes=10)
        store.register_size_class(1, 25)
        store.allocate("a", size_class=0)
        store.allocate("b", size_class=1)
        assert store.live_bytes() == 35

    def test_peak_and_total_allocated(self):
        store = PageStore()
        a = store.allocate("a")
        store.free(a)
        store.allocate("b")
        stats = store.class_stats()[0]
        assert stats.total_allocated == 2
        assert stats.peak_pages == 1
        assert stats.live_pages == 1

    def test_size_class_of(self):
        store = PageStore()
        page = store.allocate("x", size_class=4)
        assert store.size_class_of(page) == 4
        store.free(page)
        with pytest.raises(PageNotFoundError):
            store.size_class_of(page)

    def test_rejects_negative_size_class(self):
        store = PageStore()
        with pytest.raises(StorageError):
            store.allocate("x", size_class=-1)
        with pytest.raises(StorageError):
            store.register_size_class(-1, 10)
