"""Eight reader threads on one shared tree: the read-path cache races.

The read path looked pure but mutated three shared structures under the
hood — the space's ``key_rect`` LRU cache (dict eviction + stats), the
``RegionKey.bit_string`` memo, and the buffer pool's hit/miss
bookkeeping.  Racing eight readers used to corrupt the LRU dict
mid-eviction (KeyError off ``next(iter(...))``) or lose stats updates.
This suite is the regression net for the thread-safety fixes: identical
answers from every thread, no exceptions, and cache stats that still
add up afterwards.
"""

import threading

import pytest

from repro.core.tree import BVTree
from repro.storage import BufferPool, ColumnarStore, PageStore

from tests.concurrency.conftest import distinct_points, make_space

N_THREADS = 8
ROUNDS = 40


def _build_tree(layout, store=None):
    space = make_space(resolution=8)
    tree = BVTree(
        space,
        data_capacity=4,
        fanout=4,
        store=store
        if store is not None
        else (ColumnarStore() if layout == "columnar" else PageStore()),
        layout=layout,
    )
    points = distinct_points(300, space, seed=13)
    tree.bulk_load(((p, i) for i, p in enumerate(points)), replace=True)
    return tree, points


def _hammer(tree, points, errors, answers, slot):
    try:
        local = []
        for round_no in range(ROUNDS):
            for point in points[slot::N_THREADS]:
                local.append(tree.get(point))
            result = tree.range_query((0.2, 0.2), (0.8, 0.8))
            local.append(len(result.records))
            neighbours = tree.nearest(points[slot], k=5)
            local.append(
                tuple(tuple(n.point) for n in neighbours.neighbours)
            )
            # Hammer the geometry caches directly too: every descent
            # calls key_rect; bit_string renders every key.
            locate = tree.search(points[(slot + round_no) % len(points)])
            key = locate.entry.key
            key.bit_string()
            tree.space.key_rect(key)
        answers[slot] = local
    except BaseException as exc:  # noqa: BLE001 - recorded and re-raised
        errors.append(exc)


@pytest.mark.parametrize("layout", ["object", "columnar"])
class TestReaderHammer:
    def test_eight_readers_agree_and_nothing_breaks(self, layout):
        tree, points = _build_tree(layout)
        errors: list[BaseException] = []
        answers: dict[int, list] = {}
        threads = [
            threading.Thread(
                target=_hammer, args=(tree, points, errors, answers, slot)
            )
            for slot in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        # Every thread's answers must equal a single-threaded replay.
        for slot in range(N_THREADS):
            expected = []
            for round_no in range(ROUNDS):
                for point in points[slot::N_THREADS]:
                    expected.append(tree.get(point))
                result = tree.range_query((0.2, 0.2), (0.8, 0.8))
                expected.append(len(result.records))
                neighbours = tree.nearest(points[slot], k=5)
                expected.append(
                    tuple(tuple(n.point) for n in neighbours.neighbours)
                )
            assert answers[slot] == expected

    def test_rect_cache_stats_stay_coherent(self, layout):
        tree, points = _build_tree(layout)
        errors: list[BaseException] = []
        answers: dict[int, list] = {}
        threads = [
            threading.Thread(
                target=_hammer, args=(tree, points, errors, answers, slot)
            )
            for slot in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        stats = tree.space.rect_cache_stats()
        assert stats["hits"] + stats["misses"] > 0
        # The lock-free LRU may transiently overshoot its capacity by a
        # lost eviction round per racing thread (key_rect's docstring);
        # it must never run away beyond that bound.
        assert stats["size"] <= stats["capacity"] + N_THREADS

    def test_buffer_pool_thread_safe_read_stats(self, layout):
        backing = ColumnarStore() if layout == "columnar" else PageStore()
        pool = BufferPool(backing, capacity=8, thread_safe=True)
        tree, points = _build_tree(layout, store=pool)
        errors: list[BaseException] = []
        answers: dict[int, list] = {}
        threads = [
            threading.Thread(
                target=_hammer, args=(tree, points, errors, answers, slot)
            )
            for slot in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        # With the lock, every logical read is classified exactly once;
        # a torn hit/miss pair would break this equality.
        logical = pool.stats.hits + pool.stats.misses
        assert logical > 0
        assert pool.stats.hits > 0  # capacity 8 over a hot root: hits
        assert pool.stats.misses > 0  # 300 points >> 8 frames: misses
