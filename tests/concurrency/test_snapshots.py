"""Unit tests for the snapshot/version layer: isolation, cloning, poison.

The properties the serving layer leans on, each pinned in isolation:
a pinned snapshot is frozen (split cascades invisible), version stores
are read-only, validation errors don't kill the writer but torn writes
do, and a failed all-or-nothing batch rolls back completely.
"""

import pytest

from repro.concurrency import (
    BatchAbortedError,
    Snapshot,
    TreeService,
    VersionStore,
    clone_page,
    delete_op,
    insert_op,
)
from repro.concurrency.lockstep import build_service
from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    PageNotFoundError,
    StorageError,
)

from tests.concurrency.conftest import distinct_points, make_space


class TestSnapshotIsolation:
    def test_snapshot_does_not_see_later_insert(self, layout):
        service, _ = build_service(layout)
        service.insert((0.25, 0.25), "a")
        before = service.snapshot()
        service.insert((0.75, 0.75), "b")
        assert before.get((0.25, 0.25)) == "a"
        with pytest.raises(KeyNotFoundError):
            before.get((0.75, 0.75))
        assert service.get((0.75, 0.75)) == "b"

    def test_snapshot_does_not_see_later_delete(self, layout):
        service, _ = build_service(layout)
        service.insert((0.25, 0.25), "a")
        before = service.snapshot()
        service.delete((0.25, 0.25))
        assert before.get((0.25, 0.25)) == "a"
        assert not service.contains((0.25, 0.25))

    def test_snapshot_frozen_across_split_storm(self, layout):
        """The torn-cascade guard: a snapshot pinned just before a storm
        of splits (tiny capacities, many inserts) must answer from the
        old structure, byte-for-byte, and still materialize cleanly."""
        service, _ = build_service(layout)
        space = service.tree.space
        points = distinct_points(120, space, seed=7)
        for i, point in enumerate(points[:20]):
            service.insert(point, i)
        pinned = service.snapshot()
        frozen = dict(pinned.items())
        height_before = pinned.height
        for i, point in enumerate(points[20:], start=20):
            service.insert(point, i)
        assert service.tree.height > height_before  # the storm happened
        assert dict(pinned.items()) == frozen
        assert pinned.height == height_before
        for point in points[:20]:
            assert pinned.contains(point)
        for point in points[20:]:
            assert not pinned.contains(point)

    def test_each_commit_bumps_lsn_and_pins_its_prefix(self, layout):
        service, _ = build_service(layout)
        space = service.tree.space
        points = distinct_points(12, space, seed=3)
        snapshots = [service.snapshot()]
        for i, point in enumerate(points):
            service.insert(point, i)
            snapshots.append(service.snapshot())
        for k, snapshot in enumerate(snapshots):
            assert snapshot.lsn == k
            assert len(snapshot) == k
            assert {p for p, _ in snapshot.items()} == {
                tuple(p) for p in points[:k]
            }

    def test_range_and_knn_answer_from_the_pinned_version(self, layout):
        service, _ = build_service(layout)
        space = service.tree.space
        points = distinct_points(40, space, seed=11)
        for i, point in enumerate(points):
            service.insert(point, i)
        pinned = service.snapshot()
        expected_range = {
            p
            for p in map(tuple, points)
            if all(0.2 <= c <= 0.8 for c in p)
        }
        for point in distinct_points(40, space, seed=99):
            service.insert(point, -1, replace=True)
        result = pinned.range_query((0.2, 0.2), (0.8, 0.8))
        assert {tuple(p) for p, _ in result.records} == expected_range
        neighbours = pinned.nearest((0.5, 0.5), k=5)
        assert len(neighbours.neighbours) == 5
        assert {tuple(n.point) for n in neighbours.neighbours} <= set(
            map(tuple, points)
        )


class TestMaterialize:
    def test_materialized_tree_equals_snapshot_and_checks(self, layout):
        service, _ = build_service(layout)
        points = distinct_points(80, service.tree.space, seed=5)
        for i, point in enumerate(points):
            service.insert(point, i)
        pinned = service.snapshot()
        tree = pinned.materialize()
        assert sorted(
            (tuple(p), v) for p, v in tree.items()
        ) == sorted((tuple(p), v) for p, v in pinned.items())
        tree.check(check_occupancy=False, check_justification=False)


class TestVersionStoreReadOnly:
    def test_mutators_raise(self, layout):
        service, _ = build_service(layout)
        service.insert((0.5, 0.5), "a")
        store = service.snapshot().store
        assert isinstance(store, VersionStore)
        with pytest.raises(StorageError):
            store.allocate()
        with pytest.raises(StorageError):
            store.write(0, object())
        with pytest.raises(StorageError):
            store.free(0)

    def test_missing_page_raises_page_not_found(self, layout):
        service, _ = build_service(layout)
        store = service.snapshot().store
        with pytest.raises(PageNotFoundError):
            store.read(10_000)


class TestClonePage:
    def test_clone_is_independent(self, layout):
        service, _ = build_service(layout)
        points = distinct_points(3, service.tree.space, seed=1)
        for i, point in enumerate(points):
            service.insert(point, i)
        tree = service.tree
        live = tree.store.read(tree.root_page)
        copy = clone_page(live)
        assert type(copy) is type(live)
        assert len(copy) == len(live)
        space = tree.space
        extra = distinct_points(1, space, seed=77)[0]
        live.insert(space.point_path(extra), tuple(extra), "x")
        assert len(copy) == len(live) - 1

    def test_unknown_payload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            clone_page(object())


class TestPoisonSemantics:
    def test_validation_errors_do_not_poison(self, layout):
        service, _ = build_service(layout)
        service.insert((0.5, 0.5), "a")
        with pytest.raises(DuplicateKeyError):
            service.insert((0.5, 0.5), "b")
        with pytest.raises(KeyNotFoundError):
            service.delete((0.1, 0.9))
        assert not service.poisoned
        assert service.lsn == 1
        service.insert((0.25, 0.75), "c")  # the writer is still live
        assert service.lsn == 2

    def test_torn_write_poisons_and_readers_keep_last_version(
        self, layout, monkeypatch
    ):
        service, _ = build_service(layout)
        points = distinct_points(10, service.tree.space, seed=2)
        for i, point in enumerate(points):
            service.insert(point, i)
        pinned = service.snapshot()
        committed = dict(pinned.items())

        # Crash the inner store mid-mutation: the recorder marks the
        # page dirty *before* delegating, so the failure lands after
        # page state was torn — the poison case.
        inner = service.tree.store.inner
        real_write = inner.write

        def torn_write(page_id, content):
            real_write(page_id, content)
            raise RuntimeError("injected crash after a page write")

        monkeypatch.setattr(inner, "write", torn_write)
        extra = distinct_points(1, service.tree.space, seed=55)[0]
        with pytest.raises(RuntimeError):
            service.insert(extra, "boom")
        monkeypatch.undo()

        assert service.poisoned
        with pytest.raises(StorageError):
            service.insert((0.9, 0.9), "after")
        # Readers are unaffected: old pins and new snapshots both serve
        # the last published version.
        assert dict(pinned.items()) == committed
        assert dict(service.snapshot().items()) == committed
        assert service.snapshot().lsn == pinned.lsn


class TestBatchSemantics:
    def test_apply_batch_is_all_or_nothing(self, layout):
        service, _ = build_service(layout)
        points = distinct_points(30, service.tree.space, seed=4)
        for i, point in enumerate(points[:25]):
            service.insert(point, i)
        lsn_before = service.lsn
        before = dict(service.snapshot().items())
        bad = [
            insert_op(points[25], 100),
            insert_op(points[26], 101),
            delete_op(distinct_points(1, service.tree.space, seed=500)[0]),
            insert_op(points[27], 103),
        ]
        with pytest.raises(BatchAbortedError) as err:
            service.apply_batch(bad)
        assert err.value.index == 2
        assert isinstance(err.value.cause, KeyNotFoundError)
        assert service.lsn == lsn_before
        assert dict(service.snapshot().items()) == before
        assert not service.poisoned

        lsn = service.apply_batch(
            [insert_op(points[25], 100), delete_op(points[0])]
        )
        assert lsn == lsn_before + 1
        now = service.snapshot()
        assert now.contains(points[25])
        assert not now.contains(points[0])

    def test_apply_ops_commits_independent_outcomes(self, layout):
        service, _ = build_service(layout)
        a, b = distinct_points(2, service.tree.space, seed=6)
        service.insert(a, "a")
        outcomes, lsn = service.apply_ops(
            [
                insert_op(a, "dup"),  # duplicate: fails
                insert_op(b, "b"),  # commits
                delete_op(a),  # commits
            ]
        )
        assert [ok for ok, _ in outcomes] == [False, True, True]
        assert isinstance(outcomes[0][1], DuplicateKeyError)
        assert lsn == 2  # one publication for the whole group
        snapshot = service.snapshot()
        assert snapshot.contains(b)
        assert not snapshot.contains(a)
