"""Free-running threads: real races, post-hoc linearizability checking.

:func:`repro.concurrency.run_threads` races one writer thread against
continuously-pinning reader threads, then rebuilds an oracle from the
committed log and checks every observation against the prefix its LSN
names.  Unlike the deterministic schedules these runs genuinely
interleave on the GIL's preemption points — the writer is mid-split
while readers pin — so they exercise the publication path's atomicity
for real.
"""

import random

import pytest

from repro.concurrency import TreeService, build_service, run_threads
from repro.core.tree import BVTree
from repro.storage import BufferPool, ColumnarStore, PageStore

from tests.concurrency.conftest import distinct_points, make_space


def mixed_ops(points, seed, delete_fraction=0.3, replace_fraction=0.2):
    """A wire-format op list over path-distinct points."""
    rng = random.Random(seed)
    ops = []
    live = []
    for i, point in enumerate(points):
        roll = rng.random()
        if live and roll < delete_fraction:
            victim = live.pop(rng.randrange(len(live)))
            ops.append({"op": "delete", "point": list(victim)})
            # Half the deleted points come back later with a new value.
            if rng.random() < 0.5:
                ops.append({
                    "op": "insert",
                    "point": list(victim),
                    "value": 10_000 + i,
                })
                live.append(victim)
        elif live and roll < delete_fraction + replace_fraction:
            target = live[rng.randrange(len(live))]
            ops.append({
                "op": "insert",
                "point": list(target),
                "value": 20_000 + i,
                "replace": True,
            })
        else:
            ops.append({"op": "insert", "point": list(point), "value": i})
            live.append(point)
    return ops


class TestThreadedLinearizability:
    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_ops_linearize(self, layout, seed):
        service, _ = build_service(layout)
        points = distinct_points(120, service.tree.space, seed=seed)
        ops = mixed_ops(points, seed=seed + 50)
        run_threads(
            service,
            ops,
            readers=4,
            probe_points=[list(p) for p in points[:10]],
        )

    def test_from_a_preloaded_tree(self, layout):
        """Racing against a tree with existing structure (height > 0),
        so the very first commits already rewrite index nodes."""
        service, _ = build_service(layout)
        points = distinct_points(200, service.tree.space, seed=9)
        for i, point in enumerate(points[:120]):
            service.insert(point, i)
        ops = mixed_ops(points[120:], seed=77, delete_fraction=0.0)
        run_threads(service, ops, readers=4)

    def test_buffered_store_under_thread_safe_pool(self):
        """The writer-side store may be a BufferPool; with
        thread_safe=True its cache bookkeeping stays consistent while
        the service hammers it from the writer thread."""
        space = make_space()
        pool = BufferPool(PageStore(), capacity=8, thread_safe=True)
        tree = BVTree(
            space, data_capacity=4, fanout=4, store=pool, layout="object"
        )
        service = TreeService(tree)
        points = distinct_points(100, space, seed=21)
        ops = mixed_ops(points, seed=22)
        run_threads(service, ops, readers=3)
        assert pool.stats.hits + pool.stats.misses > 0
        assert min(pool.stats.hits, pool.stats.misses) >= 0
