"""Replay every pinned schedule in ``repros/`` on both layouts.

The repro files are the committed regression net for interleavings
worth keeping (see ``repros/README.md``); this test discovers them so
pinning a new one is just dropping a JSON file in the directory.
"""

from pathlib import Path

import pytest

from repro.concurrency import dump_schedule, load_schedule, run_schedule

REPRO_DIR = Path(__file__).parent / "repros"
REPROS = sorted(REPRO_DIR.glob("*.json"))


def test_repro_directory_is_not_empty():
    assert REPROS, "the pinned-schedule regression net went missing"


@pytest.mark.parametrize(
    "path", REPROS, ids=[p.stem for p in REPROS]
)
def test_pinned_schedule_replays(path, layout):
    run_schedule(load_schedule(path), layout=layout)


def test_dump_load_round_trip(tmp_path):
    schedule = [
        {
            "actor": "writer",
            "op": {"op": "insert", "point": [0.5, 0.5], "value": 1},
        },
        {
            "actor": "reader",
            "queries": [{"kind": "get", "point": [0.5, 0.5]}],
            "verify": "structure",
        },
    ]
    target = dump_schedule(schedule, tmp_path / "case.json")
    assert load_schedule(target) == schedule
    run_schedule(load_schedule(target))
