"""Deterministic lockstep schedules: interleaved reads vs the oracle.

Each schedule is a list of writer/reader steps replayed in program
order by :func:`repro.concurrency.run_schedule`; the harness itself
raises :class:`LockstepError` if any read disagrees with the oracle
prefix at its LSN, so a passing test *is* the linearizability claim
for that schedule.  Randomized schedules here are seeded (reproducible
by construction); hand-pinned regression schedules live in
``tests/concurrency/repros/``.
"""

import random

import pytest

from repro.concurrency import LockstepError, build_service, run_schedule

from tests.concurrency.conftest import distinct_points, make_space


def _queries(rng, live_points, all_points):
    """A reader step's query list: spot gets, one range, one knn."""
    queries = []
    for _ in range(3):
        pool = all_points if rng.random() < 0.3 else (live_points or all_points)
        point = pool[rng.randrange(len(pool))]
        queries.append({"kind": "get", "point": list(point)})
    lo = rng.random() * 0.7
    queries.append({
        "kind": "range",
        "lows": [lo, lo],
        "highs": [lo + 0.3, lo + 0.3],
    })
    queries.append({
        "kind": "knn",
        "point": [rng.random(), rng.random()],
        "k": 3,
    })
    return queries


def random_schedule(seed, n_ops=60, verify_every=10):
    """A seeded interleaving of inserts/deletes/batches and reader steps."""
    rng = random.Random(seed)
    space = make_space()
    points = distinct_points(n_ops, space, seed=seed + 1000)
    live = []
    cursor = 0
    schedule = []
    steps = 0
    while cursor < len(points):
        steps += 1
        roll = rng.random()
        if roll < 0.35 or not live:
            point = points[cursor]
            cursor += 1
            live.append(point)
            schedule.append({
                "actor": "writer",
                "op": {
                    "op": "insert",
                    "point": list(point),
                    "value": cursor,
                },
            })
        elif roll < 0.45 and len(live) > 2:
            point = live.pop(rng.randrange(len(live)))
            schedule.append({
                "actor": "writer",
                "op": {"op": "delete", "point": list(point)},
            })
        elif roll < 0.55 and cursor + 3 <= len(points):
            group = []
            for _ in range(3):
                point = points[cursor]
                cursor += 1
                live.append(point)
                group.append({
                    "op": "insert",
                    "point": list(point),
                    "value": cursor,
                })
            schedule.append({"actor": "writer", "group": group})
        else:
            step = {
                "actor": "reader",
                "queries": _queries(rng, live, points),
            }
            if steps % verify_every == 0:
                step["verify"] = "structure"
            schedule.append(step)
    schedule.append({
        "actor": "reader",
        "queries": _queries(rng, live, points),
        "verify": "structure",
    })
    return schedule


class TestRandomSchedules:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_schedule_linearizes(self, layout, seed):
        run_schedule(random_schedule(seed), layout=layout)

    def test_longer_schedule_with_batches(self, layout):
        run_schedule(random_schedule(1234, n_ops=150), layout=layout)


class TestExpectedFailures:
    def test_duplicate_insert_fails_both_sides_without_publishing(
        self, layout
    ):
        schedule = [
            {
                "actor": "writer",
                "op": {"op": "insert", "point": [0.5, 0.5], "value": 1},
            },
            {
                "actor": "writer",
                # The oracle knows the point is taken, so the harness
                # demands this insert fail with DuplicateKeyError and
                # publish nothing.
                "op": {"op": "insert", "point": [0.5, 0.5], "value": 2},
            },
            {
                "actor": "reader",
                "queries": [{"kind": "get", "point": [0.5, 0.5]}],
            },
        ]
        service = run_schedule(schedule, layout=layout)
        assert service.lsn == 1
        assert service.get((0.5, 0.5)) == 1

    def test_delete_of_missing_point_expected(self, layout):
        schedule = [
            {
                "actor": "writer",
                "op": {"op": "delete", "point": [0.9, 0.1]},
            },
        ]
        service = run_schedule(schedule, layout=layout)
        assert service.lsn == 0

    def test_unexpected_success_is_a_lockstep_error(self, layout):
        """If the oracle believes a point is live but the service lost
        it, the insert succeeds where the harness demanded a duplicate
        failure — that divergence must surface as a LockstepError."""
        service, oracle = build_service(layout)
        oracle.commit([{"op": "insert", "point": [0.3, 0.3], "value": 1}])
        with pytest.raises(LockstepError):
            run_schedule(
                [{
                    "actor": "writer",
                    "op": {"op": "insert", "point": [0.3, 0.3], "value": 2},
                }],
                service=service,
                oracle=oracle,
                layout=layout,
            )


class TestHarnessCatchesBugs:
    """The harness must *fail* when the service lies — meta-tests."""

    def test_stale_oracle_is_detected(self, layout):
        service, oracle = build_service(layout)
        service.insert((0.5, 0.5), "x")
        # The oracle missed the commit: the next reader step must fail
        # the lsn lockstep check.
        with pytest.raises(LockstepError):
            run_schedule(
                [{"actor": "reader", "queries": []}],
                service=service,
                oracle=oracle,
                layout=layout,
            )

    def test_wrong_value_is_detected(self, layout):
        from repro.concurrency import verify_snapshot

        service, oracle = build_service(layout)
        oracle.commit([{"op": "insert", "point": [0.5, 0.5], "value": "A"}])
        service.insert((0.5, 0.5), "B")
        with pytest.raises(LockstepError):
            verify_snapshot(
                service.snapshot(),
                oracle,
                [{"kind": "get", "point": [0.5, 0.5]}],
            )
