"""Property tests: no schedule surfaces a torn cascade or guard drift.

Hypothesis generates interleaved writer/reader schedules (ops drawn
from a small grid so duplicates and delete-of-present cases actually
occur) and :func:`run_schedule` replays each, with structural
verification (materialize + invariant checker + doctor) at the end.
Falsifying examples shrink to minimal schedules; anything found here
should be pinned as a JSON repro in ``tests/concurrency/repros/``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import run_schedule

# A coarse grid keeps the key space small enough that random ops hit
# the same paths often — the interesting cases (duplicate inserts,
# deletes of just-inserted points, replace chains) arise naturally.
_COORD = st.sampled_from([i / 8 + 1 / 16 for i in range(8)])
_POINT = st.tuples(_COORD, _COORD)

_INSERT = st.fixed_dictionaries({
    "op": st.just("insert"),
    "point": _POINT.map(list),
    "value": st.integers(min_value=0, max_value=99),
    "replace": st.booleans(),
})
_DELETE = st.fixed_dictionaries({
    "op": st.just("delete"),
    "point": _POINT.map(list),
})
_WRITE_OP = st.one_of(_INSERT, _DELETE)

_READER_STEP = st.fixed_dictionaries({
    "actor": st.just("reader"),
    "queries": st.lists(
        st.one_of(
            st.fixed_dictionaries({
                "kind": st.just("get"),
                "point": _POINT.map(list),
            }),
            st.fixed_dictionaries({
                "kind": st.just("range"),
                "lows": st.just([0.25, 0.25]),
                "highs": st.just([0.75, 0.75]),
            }),
            st.fixed_dictionaries({
                "kind": st.just("knn"),
                "point": _POINT.map(list),
                "k": st.integers(min_value=1, max_value=4),
            }),
        ),
        max_size=3,
    ),
})

_WRITER_STEP = st.one_of(
    st.fixed_dictionaries({"actor": st.just("writer"), "op": _WRITE_OP}),
    st.fixed_dictionaries({
        "actor": st.just("writer"),
        "group": st.lists(_WRITE_OP, min_size=1, max_size=4),
    }),
    st.fixed_dictionaries({
        "actor": st.just("writer"),
        "batch": st.lists(_WRITE_OP, min_size=1, max_size=4),
    }),
)

_SCHEDULE = st.lists(
    st.one_of(_WRITER_STEP, _WRITER_STEP, _READER_STEP),
    min_size=1,
    max_size=40,
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestScheduleProperties:
    @_SETTINGS
    @given(schedule=_SCHEDULE)
    def test_no_schedule_breaks_lockstep_object(self, schedule):
        service = run_schedule(schedule, layout="object")
        self._verify_end_state(service)

    @_SETTINGS
    @given(schedule=_SCHEDULE)
    def test_no_schedule_breaks_lockstep_columnar(self, schedule):
        service = run_schedule(schedule, layout="columnar")
        self._verify_end_state(service)

    @staticmethod
    def _verify_end_state(service):
        """After any schedule: the final snapshot materializes into a
        tree that passes the invariant checker and the doctor — no torn
        split cascade, no guard-set inconsistency survived."""
        from repro.concurrency import verify_structure

        verify_structure(service.snapshot())
