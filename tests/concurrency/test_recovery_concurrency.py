"""Crash-under-concurrency cells: writer dies, readers live, recovery holds.

Four new cells extending the crash matrix (``tests/storage/
test_crash_matrix.py``) with concurrent readers: a ``TreeService``
fronts a WAL-backed durable tree, reader threads continuously pin
snapshots, and an injected :class:`FaultPlan` kills the writer mid-op,
mid-batch, or mid-checkpoint.  Each cell then asserts all three
contracts at once:

- **readers finish consistently** — every observation taken before,
  during and after the crash equals the published version at its LSN,
  and pinned snapshots survive the crash untouched;
- **the writer poisons, not corrupts** — further writes raise
  ``StorageError``; the last published version keeps serving;
- **recovery + doctor pass** — reopening the directory yields a tree
  equal to some prefix of the driven op history (WAL commit granularity
  is per-op, so a crash inside an all-or-nothing batch may legitimately
  recover a partial batch: durability and snapshot isolation draw their
  atomicity boundaries differently, and this suite pins that exact
  distinction), and the recovered tree passes the structural checker
  and the guarantee doctor.
"""

import threading

import pytest

from repro.concurrency import TreeService
from repro.core.tree import BVTree
from repro.errors import SimulatedCrashError, StorageError
from repro.obs.report import run_doctor
from repro.storage.durable.recovery import (
    create_durable_tree,
    open_durable_tree,
)
from repro.storage.faults import FaultPlan

from tests.concurrency.conftest import distinct_points, make_space

CAPACITY = 4
FANOUT = 4


def _build(tmp_path, plan, sync="os"):
    space = make_space()
    tree = create_durable_tree(
        tmp_path,
        space,
        data_capacity=CAPACITY,
        fanout=FANOUT,
        faults=plan,
        sync=sync,
    )
    return TreeService(tree), space


def _start_readers(service, stop, observations, failures, n=3):
    def reader():
        try:
            while not stop.is_set():
                snapshot = service.snapshot()
                observations.append(
                    (snapshot.lsn, frozenset(snapshot.items()))
                )
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            failures.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(n)]
    for thread in threads:
        thread.start()
    return threads


def _check_readers(observations, published, failures):
    assert not failures, failures[0]
    assert observations, "readers never pinned a snapshot"
    by_lsn = dict(published)
    for lsn, records in observations:
        assert lsn in by_lsn, f"observed unpublished lsn {lsn}"
        assert records == by_lsn[lsn], f"observation at lsn {lsn} diverged"


def _expected_prefixes(fine_ops):
    """Record-set after each prefix of the fine-grained op history."""
    state: dict[tuple, object] = {}
    prefixes = [frozenset(state.items())]
    for verb, point, value in fine_ops:
        if verb == "insert":
            state[tuple(point)] = value
        else:
            state.pop(tuple(point), None)
        prefixes.append(frozenset(state.items()))
    return prefixes


def _assert_recovers_to_a_prefix(tmp_path, fine_ops):
    recovered, report = open_durable_tree(tmp_path)
    got = frozenset((tuple(p), v) for p, v in recovered.items())
    assert got in set(_expected_prefixes(fine_ops)), (
        "recovered state is not a prefix of the driven op history"
    )
    recovered.check(check_occupancy=False, check_justification=False)
    doctor = run_doctor(recovered, workload="recovered")
    assert doctor.exit_code == 0, doctor.health.to_dict()
    recovered.store.close()
    return got, report


class TestCrashCellsWithReaders:
    def test_torn_tail_mid_insert_stream(self, tmp_path):
        """Cell 1: the WAL tears mid-stream while readers pin."""
        service, space = _build(
            tmp_path,
            FaultPlan(
                crash_after_appends=90, tail="torn", torn_fraction=0.5
            ),
        )
        points = distinct_points(80, space, seed=31)
        published = [(0, frozenset())]
        fine_ops = []
        stop = threading.Event()
        observations, failures = [], []
        readers = _start_readers(service, stop, observations, failures)
        pinned_before_crash = None
        try:
            for i, point in enumerate(points):
                try:
                    lsn = service.insert(point, i)
                except SimulatedCrashError:
                    break
                fine_ops.append(("insert", point, i))
                published.append(
                    (lsn, frozenset(service.snapshot().items()))
                )
                if i == 20:
                    pinned_before_crash = service.snapshot()
            else:
                pytest.fail("fault plan never fired")
        finally:
            stop.set()
            for thread in readers:
                thread.join()

        assert service.poisoned
        with pytest.raises(StorageError):
            service.insert((0.99, 0.99), "after-crash")
        # The pinned snapshot and the final published version survive.
        assert pinned_before_crash is not None
        assert dict(pinned_before_crash.items()) == dict(
            list(published[21][1])
        )
        assert (
            frozenset(service.snapshot().items()) == published[-1][1]
        )
        _check_readers(observations, published, failures)
        _assert_recovers_to_a_prefix(tmp_path, fine_ops)

    def test_crash_inside_all_or_nothing_batch(self, tmp_path):
        """Cell 2: the process dies *inside* apply_batch.  Snapshot
        atomicity held (nothing was published), but the WAL commits
        per op — recovery may resurrect a partial batch."""
        service, space = _build(
            tmp_path, FaultPlan(crash_after_appends=70, tail="keep")
        )
        points = distinct_points(60, space, seed=32)
        fine_ops = []
        published = [(0, frozenset())]
        stop = threading.Event()
        observations, failures = [], []
        readers = _start_readers(service, stop, observations, failures)
        crashed = False
        try:
            for start in range(0, len(points), 5):
                chunk = points[start : start + 5]
                batch = [
                    ("insert", p, start + j, False)
                    for j, p in enumerate(chunk)
                ]
                try:
                    lsn = service.apply_batch(batch)
                except SimulatedCrashError:
                    crashed = True
                    # The WAL may hold a prefix of this batch's ops.
                    for j, p in enumerate(chunk):
                        fine_ops.append(("insert", p, start + j))
                    break
                for j, p in enumerate(chunk):
                    fine_ops.append(("insert", p, start + j))
                published.append(
                    (lsn, frozenset(service.snapshot().items()))
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert crashed, "fault plan never fired"
        assert service.poisoned
        # No torn batch was ever published to readers.
        assert frozenset(service.snapshot().items()) == published[-1][1]
        _check_readers(observations, published, failures)
        _assert_recovers_to_a_prefix(tmp_path, fine_ops)

    def test_crash_inside_checkpoint_with_pinned_readers(self, tmp_path):
        """Cell 3: checkpoint dies mid-write; the old image + WAL replay
        still recover everything that committed."""
        service, space = _build(
            tmp_path, FaultPlan(crash_in_checkpoint="mid_write")
        )
        points = distinct_points(40, space, seed=33)
        fine_ops = []
        published = [(0, frozenset())]
        stop = threading.Event()
        observations, failures = [], []
        readers = _start_readers(service, stop, observations, failures)
        try:
            for i, point in enumerate(points):
                lsn = service.insert(point, i)
                fine_ops.append(("insert", point, i))
                published.append(
                    (lsn, frozenset(service.snapshot().items()))
                )
            pinned = service.snapshot()
            with pytest.raises(SimulatedCrashError):
                service.checkpoint()
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert service.poisoned
        # Every driven op committed before the checkpoint crash.
        assert dict(pinned.items()) == {
            tuple(p): i for i, p in enumerate(points)
        }
        _check_readers(observations, published, failures)
        got, _ = _assert_recovers_to_a_prefix(tmp_path, fine_ops)
        # Every driven op committed; the checkpoint crash loses nothing.
        assert got == _expected_prefixes(fine_ops)[-1]

    def test_unsynced_tail_dropped_under_churn(self, tmp_path):
        """Cell 4: power-cut model — the OS drops the WAL tail beyond
        the last fsync, under a mixed insert/delete stream.  With
        sync=commit every acknowledged op was fsynced, so recovery must
        land exactly on the acknowledged prefix (not merely some
        prefix)."""
        service, space = _build(
            tmp_path,
            FaultPlan(crash_after_appends=110, tail="drop_unsynced"),
            sync="commit",
        )
        points = distinct_points(70, space, seed=34)
        fine_ops = []
        published = [(0, frozenset())]
        stop = threading.Event()
        observations, failures = [], []
        readers = _start_readers(service, stop, observations, failures)
        crashed = False
        try:
            live = []
            for i, point in enumerate(points):
                try:
                    if live and i % 4 == 3:
                        victim = live.pop(0)
                        _, lsn = service.delete(victim)
                        fine_ops.append(("delete", victim, None))
                    else:
                        lsn = service.insert(point, i)
                        fine_ops.append(("insert", point, i))
                        live.append(point)
                except SimulatedCrashError:
                    crashed = True
                    break
                published.append(
                    (lsn, frozenset(service.snapshot().items()))
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert crashed, "fault plan never fired"
        _check_readers(observations, published, failures)
        got, _ = _assert_recovers_to_a_prefix(tmp_path, fine_ops)
        # sync=commit: every acknowledged op was fsynced before it
        # returned, so the recovered state is the *full* acknowledged
        # prefix, not an earlier one.
        assert got == _expected_prefixes(fine_ops)[-1]
