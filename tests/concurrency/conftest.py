"""Shared fixtures for the concurrency suite.

Every test here builds tiny trees (capacity 4, fanout 4) so a handful
of inserts forces splits — including multi-level cascades — and reads
race against real structural churn, not quiet in-place updates.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry.space import DataSpace

LAYOUTS = ("object", "columnar")


@pytest.fixture(params=LAYOUTS)
def layout(request):
    return request.param


def make_space(resolution: int = 8) -> DataSpace:
    return DataSpace.unit(2, resolution=resolution)


def distinct_points(n: int, space: DataSpace, seed: int = 0):
    """``n`` random points with pairwise-distinct tree paths."""
    rng = random.Random(seed)
    seen: set[int] = set()
    out: list[tuple[float, ...]] = []
    while len(out) < n:
        point = tuple(rng.random() for _ in range(space.ndim))
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            out.append(point)
    return out
