"""The 30-second soak: sustained mixed load, every store flavour.

Marked ``slow`` (nightly lane): each cell races a writer applying a
long mixed op stream against snapshot readers for several seconds of
wall clock, across both layouts and both store flavours (plain
in-memory and WAL-backed durable), with the full post-hoc
linearizability check of :func:`run_threads` plus a final structural
verification.  The default lane gets the same coverage in miniature
from the other files; this one exists to give races that need many
preemption cycles room to show up.
"""

import pytest

from repro.concurrency import TreeService, run_threads, verify_structure
from repro.core.tree import BVTree
from repro.storage import BufferPool, ColumnarStore, PageStore
from repro.storage.durable.recovery import create_durable_tree

from tests.concurrency.conftest import distinct_points, make_space
from tests.concurrency.test_linearizability_threads import mixed_ops

pytestmark = pytest.mark.slow

#: Ops per soak cell — sized so the four cells together take ~30s.
SOAK_OPS = 9000


def _soak(service, seed):
    points = distinct_points(SOAK_OPS, service.tree.space, seed=seed)
    ops = mixed_ops(points, seed=seed + 1)
    run_threads(
        service,
        ops,
        readers=4,
        probe_points=[list(p) for p in points[:20]],
    )
    verify_structure(service.snapshot())


@pytest.mark.parametrize("layout", ["object", "columnar"])
def test_soak_in_memory(layout):
    space = make_space(resolution=10)
    tree = BVTree(
        space,
        data_capacity=8,
        fanout=8,
        store=ColumnarStore() if layout == "columnar" else PageStore(),
        layout=layout,
    )
    _soak(TreeService(tree), seed=1000 if layout == "object" else 2000)


def test_soak_buffered():
    space = make_space(resolution=10)
    pool = BufferPool(PageStore(), capacity=32, thread_safe=True)
    tree = BVTree(space, data_capacity=8, fanout=8, store=pool)
    _soak(TreeService(tree), seed=3000)


def test_soak_durable(tmp_path):
    space = make_space(resolution=10)
    tree = create_durable_tree(
        tmp_path, space, data_capacity=8, fanout=8, sync="os"
    )
    service = TreeService(tree)
    _soak(service, seed=4000)
    service.detach()
    tree.store.close()
