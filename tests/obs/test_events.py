"""Tests for the trace event model and its JSONL wire form."""

import pytest

from repro.errors import ReproError
from repro.obs.events import (
    DATA_SPLIT,
    DEMOTION,
    EVENT_KINDS,
    INDEX_SPLIT,
    MERGE,
    OP_BEGIN,
    OP_END,
    PROMOTION,
    REDISTRIBUTE,
    STRUCTURAL_KINDS,
    TraceEvent,
)


class TestTraceEvent:
    def test_round_trip(self):
        event = TraceEvent(
            seq=7, op=2, kind=DATA_SPLIT, fields={"key": "01", "moved": 3}
        )
        data = event.to_dict()
        assert data == {
            "seq": 7,
            "op": 2,
            "kind": "data_split",
            "key": "01",
            "moved": 3,
        }
        assert TraceEvent.from_dict(data) == event

    def test_fieldless_round_trip(self):
        event = TraceEvent(seq=1, op=0, kind=OP_BEGIN)
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_envelope_collision_rejected(self):
        event = TraceEvent(seq=1, op=0, kind=OP_END, fields={"seq": 9})
        with pytest.raises(ReproError, match="collides with the envelope"):
            event.to_dict()

    def test_missing_envelope_key_rejected(self):
        with pytest.raises(ReproError, match="missing"):
            TraceEvent.from_dict({"seq": 1, "kind": "op_begin"})

    def test_is_frozen(self):
        event = TraceEvent(seq=1, op=0, kind=OP_BEGIN)
        with pytest.raises(AttributeError):
            event.seq = 2  # type: ignore[misc]


class TestKindCatalogue:
    def test_structural_kinds_are_event_kinds(self):
        assert STRUCTURAL_KINDS <= EVENT_KINDS

    def test_structural_kinds_mirror_op_counters(self):
        # One kind per OpCounters structural field — the replay tests
        # rely on this correspondence being exhaustive.
        assert STRUCTURAL_KINDS == frozenset(
            {
                DATA_SPLIT,
                INDEX_SPLIT,
                PROMOTION,
                DEMOTION,
                MERGE,
                REDISTRIBUTE,
            }
        )

    def test_spans_are_not_structural(self):
        assert OP_BEGIN not in STRUCTURAL_KINDS
        assert OP_END not in STRUCTURAL_KINDS
