"""Tests for the span-aware tracer and its disabled-path guarantees."""

import pytest

from repro.errors import ReproError
from repro.obs.events import OP_BEGIN, OP_END, PAGE_READ
from repro.obs.sinks import NullSink, RingSink
from repro.obs.tracer import Tracer


class TestEnablement:
    def test_default_is_disabled_null_sink(self):
        tracer = Tracer()
        assert tracer.enabled is False
        assert isinstance(tracer.sink, NullSink)

    def test_real_sink_enables_at_construction(self):
        tracer = Tracer(RingSink())
        assert tracer.enabled is True

    def test_disabled_emit_is_dropped(self):
        tracer = Tracer()
        tracer.emit(PAGE_READ, page=1)
        assert tracer.seq == 0

    def test_attach_enables_and_detach_returns_sink(self):
        tracer = Tracer()
        sink = RingSink()
        tracer.attach(sink)
        assert tracer.enabled is True
        tracer.emit(PAGE_READ, page=1)
        returned = tracer.detach()
        assert returned is sink
        assert tracer.enabled is False
        assert isinstance(tracer.sink, NullSink)
        assert len(sink) == 1

    def test_attach_null_sink_stays_disabled(self):
        tracer = Tracer()
        tracer.attach(NullSink())
        assert tracer.enabled is False

    def test_disable_pauses_without_losing_sink(self):
        sink = RingSink()
        tracer = Tracer(sink)
        tracer.emit(PAGE_READ, page=1)
        tracer.disable()
        tracer.emit(PAGE_READ, page=2)
        tracer.enable()
        tracer.emit(PAGE_READ, page=3)
        pages = [event.fields["page"] for event in sink.events()]
        assert pages == [1, 3]

    def test_enable_on_null_sink_is_a_no_op(self):
        tracer = Tracer()
        tracer.enable()
        assert tracer.enabled is False


class TestEmission:
    def test_seq_increases_monotonically(self):
        sink = RingSink()
        tracer = Tracer(sink)
        tracer.emit(PAGE_READ, page=1)
        tracer.emit(PAGE_READ, page=2)
        assert [event.seq for event in sink.events()] == [1, 2]
        assert tracer.seq == 2

    def test_events_outside_spans_carry_op_zero(self):
        sink = RingSink()
        tracer = Tracer(sink)
        tracer.emit(PAGE_READ, page=1)
        assert sink.events()[0].op == 0


class TestSpans:
    def test_disabled_span_is_shared_no_op(self):
        tracer = Tracer()
        span = tracer.operation("insert")
        assert span is tracer.operation("delete")
        with span as op:
            assert op == 0
        assert tracer.seq == 0

    def test_span_brackets_and_stamps_events(self):
        sink = RingSink()
        tracer = Tracer(sink)
        with tracer.operation("insert", point=[0.5, 0.5]) as op:
            tracer.emit(PAGE_READ, page=3)
        kinds = [event.kind for event in sink.events()]
        assert kinds == [OP_BEGIN, PAGE_READ, OP_END]
        begin, read, end = sink.events()
        assert begin.fields == {"name": "insert", "point": [0.5, 0.5]}
        assert read.op == op
        assert begin.op == op and end.op == op
        assert end.fields == {"name": "insert"}
        assert tracer.current_op == 0

    def test_nested_spans_restore_outer_op(self):
        sink = RingSink()
        tracer = Tracer(sink)
        with tracer.operation("outer") as outer_op:
            with tracer.operation("inner") as inner_op:
                tracer.emit(PAGE_READ, page=1)
            tracer.emit(PAGE_READ, page=2)
        assert inner_op != outer_op
        by_page = {
            event.fields["page"]: event.op
            for event in sink.events()
            if event.kind == PAGE_READ
        }
        assert by_page == {1: inner_op, 2: outer_op}

    def test_exception_stamps_op_end_with_error(self):
        sink = RingSink()
        tracer = Tracer(sink)
        with pytest.raises(ReproError):
            with tracer.operation("insert"):
                raise ReproError("boom")
        end = sink.events()[-1]
        assert end.kind == OP_END
        assert end.fields["error"] == "ReproError"
        assert tracer.current_op == 0

    def test_distinct_spans_get_distinct_op_ids(self):
        sink = RingSink()
        tracer = Tracer(sink)
        ops = []
        for _ in range(3):
            with tracer.operation("get") as op:
                ops.append(op)
        assert len(set(ops)) == 3
