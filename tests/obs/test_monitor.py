"""Tests for the guarantee monitor's incremental structural gauges.

The monitor's contract is *exactness*: fed the structural event stream,
its O(1)-per-event bookkeeping must reproduce what a fresh full-sweep
``tree_stats()`` reports, field for field.  Every test here drives a
real tree and checks either a specific gauge or the audit as a whole;
the property tests in ``tests/properties/test_monitor_props.py`` widen
the workload space.
"""

import pytest

from repro.core.tree import BVTree
from repro.obs import GuaranteeMonitor
from repro.obs.sinks import RingSink
from repro.storage import BufferPool, PageStore
from tests.conftest import make_points


def build(unit2, store=None, **kwargs):
    kwargs.setdefault("data_capacity", 4)
    kwargs.setdefault("fanout", 4)
    return BVTree(unit2, store=store, **kwargs)


class TestLifecycle:
    def test_attach_registers_tap_and_detach_removes_it(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree)
        assert not tree.tracer.structural
        monitor.attach()
        assert monitor.attached
        assert monitor in tree.tracer.taps
        assert tree.tracer.structural
        monitor.detach()
        assert not monitor.attached
        assert monitor not in tree.tracer.taps
        assert not tree.tracer.structural

    def test_attach_is_idempotent(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        monitor.attach()
        assert tree.tracer.taps.count(monitor) == 1
        monitor.detach()

    def test_context_manager_detaches(self, unit2):
        tree = build(unit2)
        with GuaranteeMonitor(tree) as monitor:
            assert monitor.attached
        assert not monitor.attached
        assert not tree.tracer.structural

    def test_detached_monitor_freezes(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(50, 2, seed=1)):
            tree.insert(point, i, replace=True)
        monitor.detach()
        frozen_pages = dict(monitor.pages_by_level)
        for i, point in enumerate(make_points(50, 2, seed=2)):
            tree.insert(point, i, replace=True)
        assert monitor.pages_by_level == frozen_pages

    def test_attach_mid_life_seeds_from_live_pages(self, unit2):
        """Attaching to a populated tree sweeps once, then stays exact."""
        tree = build(unit2)
        points = make_points(300, 2, seed=3)
        for i, point in enumerate(points[:200]):
            tree.insert(point, i, replace=True)
        monitor = GuaranteeMonitor(tree).attach()
        assert monitor.audit().clean
        for i, point in enumerate(points[200:]):
            tree.insert(point, i, replace=True)
        assert monitor.audit().clean
        monitor.detach()


class TestGauges:
    def test_pages_and_points_track_inserts(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(100, 2, seed=5)):
            tree.insert(point, i, replace=True)
        assert monitor.points == 100
        assert monitor.height == tree.height
        stats = tree.tree_stats()
        assert monitor.pages_by_level[0] == stats.data_pages
        assert sum(monitor.occupancy(0).values()) == stats.data_pages
        monitor.detach()

    def test_occupancy_histogram_weighted_sum_is_point_count(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(150, 2, seed=6)):
            tree.insert(point, i, replace=True)
        histogram = monitor.occupancy(0)
        assert sum(size * n for size, n in histogram.items()) == 150
        monitor.detach()

    def test_min_occupancy_root_exemption(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        tree.insert((0.5, 0.5), 0)
        # One data page and it is the root: exempt -> None.
        assert monitor.min_occupancy(0, exempt_root=True) is None
        assert monitor.min_occupancy(0, exempt_root=False) == 1
        monitor.detach()

    def test_guard_counts_match_sweep(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(500, 2, seed=41)):
            tree.insert(point, i, replace=True)
        assert monitor.guards_by_level == tree.tree_stats().guards_by_level
        monitor.detach()

    def test_max_splits_per_op_is_bounded_by_root_path(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(400, 2, seed=8)):
            tree.insert(point, i, replace=True)
        assert monitor.max_splits_per_op >= 1  # splits happened
        assert monitor.max_splits_per_op <= monitor.max_height_seen + 1
        monitor.detach()

    def test_max_height_seen_is_high_water(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        points = make_points(300, 2, seed=9)
        for i, point in enumerate(points):
            tree.insert(point, i, replace=True)
        peak = tree.height
        for point in points[:280]:
            tree.delete(point)
        assert tree.height <= peak
        assert monitor.max_height_seen == peak
        monitor.detach()

    def test_pages_below_excludes_root_and_caps(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(200, 2, seed=10)):
            tree.insert(point, i, replace=True)
        huge = monitor.pages_below(0, minimum=10**9)
        assert tree.root_page not in huge
        assert monitor.pages_below(0, minimum=10**9, limit=3) == huge[:3]
        monitor.detach()

    def test_publish_writes_monitor_namespace(self, unit2):
        from repro.obs import MetricsRegistry

        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(120, 2, seed=11)):
            tree.insert(point, i, replace=True)
        registry = MetricsRegistry()
        monitor.publish(registry)
        assert registry.get("monitor.points").value == 120
        assert registry.get("monitor.height").value == tree.height
        assert registry.get("monitor.pages.l0").value == (
            monitor.pages_by_level[0]
        )
        monitor.detach()

    def test_to_dict_is_json_ready(self, unit2):
        import json

        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(80, 2, seed=12)):
            tree.insert(point, i, replace=True)
        data = monitor.to_dict()
        json.dumps(data)  # must not raise
        assert data["points"] == 80
        assert "occupancy_by_level" in data
        monitor.detach()


class TestAudit:
    def test_insert_delete_mix_audits_clean(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        points = make_points(600, 2, seed=21)
        for i, point in enumerate(points):
            tree.insert(point, i, replace=True)
        for point in points[:480]:
            tree.delete(point)
        report = monitor.audit()
        assert report.clean, report.drift
        assert bool(report)
        monitor.detach()

    def test_bulk_load_audits_clean(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        points = make_points(500, 2, seed=22)
        tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
        report = monitor.audit()
        assert report.clean, report.drift
        monitor.detach()

    def test_audit_behind_buffer_pool(self, unit2):
        pool = BufferPool(PageStore(), capacity=8)
        tree = build(unit2, store=pool)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(300, 2, seed=23)):
            tree.insert(point, i, replace=True)
        report = monitor.audit()
        assert report.clean, report.drift
        monitor.detach()

    def test_audit_reports_drift_when_state_corrupted(self, unit2):
        tree = build(unit2)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(100, 2, seed=24)):
            tree.insert(point, i, replace=True)
        # Sabotage the incremental state; the audit must notice.
        monitor.guards_by_level[99] = 7
        report = monitor.audit()
        assert not report.clean
        assert any("guards_by_level" in line for line in report.drift)
        monitor.detach()


class TestCoexistence:
    def test_monitor_and_sink_both_receive_structural_events(self, unit2):
        """A tap and an attached sink see the same structural stream."""
        tree = build(unit2)
        ring = RingSink(capacity=1 << 16)
        tree.tracer.attach(ring)
        monitor = GuaranteeMonitor(tree).attach()
        for i, point in enumerate(make_points(200, 2, seed=31)):
            tree.insert(point, i, replace=True)
        assert monitor.audit().clean
        kinds = {event.kind for event in ring.events()}
        assert "data_split" in kinds
        monitor.detach()
        tree.tracer.detach()

    def test_monitored_reads_emit_nothing(self, unit2):
        """Reads on a monitored-but-untraced tree stay silent."""
        tree = build(unit2)
        points = make_points(100, 2, seed=32)
        for i, point in enumerate(points):
            tree.insert(point, i, replace=True)
        monitor = GuaranteeMonitor(tree).attach()
        before = monitor.ops_seen
        for point in points[:50]:
            tree.get(point)
        # Read spans are gated on tracer.enabled, which a tap alone
        # does not raise, so no op_end events reach the monitor.
        assert monitor.ops_seen == before
        monitor.detach()
