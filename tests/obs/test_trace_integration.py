"""End-to-end trace tests: replay equals counters, pages equal IOStats.

These are the PR's acceptance tests.  A captured event stream is not a
narrative — it is a *second ledger* of the same structural facts
:class:`~repro.core.stats.OpCounters` and
:class:`~repro.storage.stats.IOStats` record, so counting events of each
kind must reproduce the counter deltas exactly, on any workload.
"""

from collections import Counter as KindCounter

import pytest

from repro.core.tree import BVTree
from repro.errors import KeyNotFoundError
from repro.obs.events import (
    DATA_SPLIT,
    DEMOTION,
    INDEX_SPLIT,
    MERGE,
    PAGE_READ,
    PROMOTION,
    REDISTRIBUTE,
    STRUCTURAL_KINDS,
)
from repro.obs.sinks import JsonlSink, RingSink, read_jsonl
from repro.storage import BufferPool, PageStore
from tests.conftest import make_points

#: Maps structural event kinds to the OpCounters field they mirror.
KIND_TO_COUNTER = {
    DATA_SPLIT: "data_splits",
    INDEX_SPLIT: "index_splits",
    PROMOTION: "promotions",
    DEMOTION: "demotions",
    MERGE: "merges",
    REDISTRIBUTE: "redistributions",
}


def churn(tree: BVTree, points) -> None:
    """Grow the tree fully, then shrink it far enough to force merges.

    ``points`` must be path-distinct (uniform floats at 16-bit
    resolution are), so every delete targets a present record.
    """
    for i, point in enumerate(points):
        tree.insert(point, i, replace=True)
    for point in points[: len(points) * 4 // 5]:
        tree.delete(point)


class TestReplayEqualsCounters:
    def test_structural_event_counts_equal_counter_deltas(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        sink = RingSink(capacity=1 << 20)
        before = tree.stats.snapshot()
        tree.tracer.attach(sink)
        try:
            churn(tree, make_points(500, 2, seed=41))
        finally:
            tree.tracer.detach()
        delta = tree.stats.delta(before).to_dict()
        kinds = KindCounter(event.kind for event in sink.events())
        assert sink.dropped == 0
        for kind, counter in KIND_TO_COUNTER.items():
            assert kinds[kind] == delta[counter], (kind, counter)
        # The workload must actually exercise every structural path, or
        # the equalities above are vacuous.
        for counter in KIND_TO_COUNTER.values():
            assert delta[counter] > 0, counter

    def test_replay_reconstructs_split_promotion_sequence(self, unit2):
        """An index split's promotions follow it, inside the same span."""
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        sink = RingSink(capacity=1 << 20)
        tree.tracer.attach(sink)
        try:
            for i, point in enumerate(make_points(400, 2, seed=43)):
                tree.insert(point, i, replace=True)
        finally:
            tree.tracer.detach()
        structural = [
            event for event in sink.events() if event.kind in STRUCTURAL_KINDS
        ]
        assert structural
        # Sequence numbers are strictly increasing: the stream is a total
        # order, so it can be replayed deterministically.
        seqs = [event.seq for event in structural]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # Every promotion belongs to the same insert span as an index
        # split that precedes it (promotion is split fallout, paper §4).
        split_ops: set[int] = set()
        for event in structural:
            if event.kind == INDEX_SPLIT:
                split_ops.add(event.op)
            elif event.kind == PROMOTION:
                assert event.op in split_ops
        assert split_ops

    def test_jsonl_round_trip_preserves_the_stream(self, unit2, tmp_path):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tree.tracer.attach(sink)
            try:
                for i, point in enumerate(make_points(120, 2, seed=45)):
                    tree.insert(point, i, replace=True)
            finally:
                tree.tracer.detach()
        events = read_jsonl(path)
        assert len(events) == sink.count
        kinds = KindCounter(event.kind for event in events)
        assert kinds[DATA_SPLIT] == tree.stats.data_splits


class TestPageReadsEqualIOStats:
    def test_buffered_page_reads_match_both_stat_layers(self, unit2):
        """One page_read per logical read; physical=True iff a miss."""
        pool = BufferPool(PageStore(), capacity=8)
        tree = BVTree(unit2, data_capacity=4, fanout=4, store=pool)
        for i, point in enumerate(make_points(300, 2, seed=47)):
            tree.insert(point, i, replace=True)
        io_before = pool.store.stats.snapshot()
        logical_before = pool.stats.logical_reads
        sink = RingSink(capacity=1 << 20)
        tree.tracer.attach(sink)
        try:
            for point in make_points(300, 2, seed=47):
                tree.get(point)
        finally:
            tree.tracer.detach()
        reads = [e for e in sink.events() if e.kind == PAGE_READ]
        physical = [e for e in reads if e.fields.get("physical") is True]
        assert sink.dropped == 0
        assert len(physical) == pool.store.stats.delta(io_before).reads
        assert len(reads) == pool.stats.logical_reads - logical_before
        # The tiny pool guarantees both hits and misses occurred, so the
        # equalities above discriminate.
        assert 0 < len(physical) < len(reads)

    def test_unbuffered_reads_are_all_physical(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, point in enumerate(make_points(200, 2, seed=48)):
            tree.insert(point, i, replace=True)
        before = tree.store.stats.snapshot()
        sink = RingSink(capacity=1 << 20)
        tree.tracer.attach(sink)
        try:
            for point in make_points(50, 2, seed=48):
                tree.get(point)
        finally:
            tree.tracer.detach()
        reads = [e for e in sink.events() if e.kind == PAGE_READ]
        assert all(e.fields.get("physical") is True for e in reads)
        assert len(reads) == tree.store.stats.delta(before).reads


class TestTracedOperationsStayCorrect:
    def test_traced_tree_answers_match_untraced(self, unit2):
        traced = BVTree(unit2, data_capacity=4, fanout=4)
        plain = BVTree(unit2, data_capacity=4, fanout=4)
        points = make_points(250, 2, seed=49)
        traced.tracer.attach(RingSink(capacity=1 << 20))
        try:
            for i, point in enumerate(points):
                traced.insert(point, i, replace=True)
                plain.insert(point, i, replace=True)
        finally:
            traced.tracer.detach()
        assert len(traced) == len(plain)
        for point in points[:50]:
            assert traced.get(point) == plain.get(point)
        lows, highs = (0.25, 0.25), (0.75, 0.75)
        assert sorted(
            value for _, value in traced.range_query(lows, highs).records
        ) == sorted(value for _, value in plain.range_query(lows, highs).records)
        traced.check()

    def test_missing_get_emits_op_end_with_error(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        for i, point in enumerate(make_points(100, 2, seed=50)):
            tree.insert(point, i, replace=True)
        sink = RingSink()
        tree.tracer.attach(sink)
        try:
            with pytest.raises(KeyNotFoundError):
                tree.get((0.987654, 0.123456))
        finally:
            tree.tracer.detach()
        end = sink.events()[-1]
        assert end.kind == "op_end"
        assert end.fields.get("error") == "KeyNotFoundError"
