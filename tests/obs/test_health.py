"""Tests for the guarantee health evaluator.

The evaluator's one hard requirement: its occupancy verdict must agree
with :func:`repro.core.checker.check_tree`'s invariant 6 — the checker
raising and the doctor saying ``ok``/``warning`` (or vice versa) would
be two oracles disagreeing about the same tree.  The agreement tests
here surgically underfill a page so both sides see the same pathology,
with and without the deferred-escape counters set.
"""

import pytest

from repro.core.checker import check_tree
from repro.core.tree import BVTree
from repro.errors import ReproError, TreeInvariantError
from repro.obs import (
    GuaranteeMonitor,
    HealthThresholds,
    evaluate,
    height_bound,
)
from repro.obs.health import OK, VIOLATION, WARNING, HealthReport
from repro.obs.health import HealthFinding
from tests.conftest import make_points


def grown(unit2, n=300, seed=17, **kwargs):
    kwargs.setdefault("data_capacity", 8)
    kwargs.setdefault("fanout", 8)
    tree = BVTree(unit2, **kwargs)
    for i, point in enumerate(make_points(n, 2, seed=seed)):
        tree.insert(point, i, replace=True)
    return tree


def underfill_data_page(tree):
    """Strip a non-root data page below the policy minimum, in place.

    Returns the page id.  ``tree.count`` is adjusted so invariant 5
    still holds; only invariant 6 (occupancy) is broken.
    """
    minimum = tree.policy.min_data_occupancy()
    for page_id in tree.store.page_ids():
        content = tree.store.peek(page_id)
        if page_id == tree.root_page or getattr(content, "index_level", 0):
            continue
        if len(content) >= minimum:
            while len(content) >= minimum:
                content.records.popitem()
                tree.count -= 1
            return page_id
    raise AssertionError("no data page was eligible for underfilling")


class TestHeightBound:
    def test_small_populations_need_no_index(self):
        assert height_bound(0, 2, 2) == 1
        assert height_bound(2, 2, 2) == 1  # one page
        assert height_bound(0, 2, 2, slack=0) == 0

    def test_grows_logarithmically(self):
        b1k = height_bound(1_000, 10, 2, slack=0)
        b1m = height_bound(1_000_000, 10, 2, slack=0)
        assert b1m - b1k == pytest.approx(10, abs=1)  # +2^10 factor

    def test_rejects_degenerate_minima(self):
        with pytest.raises(ReproError, match="positive"):
            height_bound(100, 0, 2)


class TestEvaluateHealthyTree:
    def test_all_three_guarantees_pass(self, unit2):
        tree = grown(unit2)
        with GuaranteeMonitor(tree) as monitor:
            report = evaluate(monitor)
        assert report.ok
        assert report.verdicts == {
            "occupancy": OK,
            "height": OK,
            "no_cascade": OK,
        }
        assert not report.violations

    def test_per_level_occupancy_findings(self, unit2):
        tree = grown(unit2)
        with GuaranteeMonitor(tree) as monitor:
            report = evaluate(monitor)
            levels = sorted(monitor.levels)
        occ = [f for f in report.findings if f.guarantee == "occupancy"]
        assert sorted(f.level for f in occ) == levels

    def test_height_slack_zero_can_flip_verdict(self, unit2):
        """Tightening the slack only ever worsens the height verdict."""
        tree = grown(unit2, n=500, data_capacity=4, fanout=4)
        with GuaranteeMonitor(tree) as monitor:
            default = evaluate(monitor)
            strict = evaluate(
                monitor, HealthThresholds(height_slack=0)
            )
        rank = {OK: 0, WARNING: 1, VIOLATION: 2}
        assert rank[strict.verdicts["height"]] >= (
            rank[default.verdicts["height"]]
        )

    def test_explicit_split_chain_bound(self, unit2):
        tree = BVTree(unit2, data_capacity=8, fanout=8)
        with GuaranteeMonitor(tree) as monitor:
            for i, point in enumerate(make_points(300, 2, seed=17)):
                tree.insert(point, i, replace=True)
            assert monitor.max_splits_per_op > 0
            report = evaluate(
                monitor, HealthThresholds(max_split_chain=0)
            )
        assert report.verdicts["no_cascade"] == VIOLATION


class TestCheckerAgreement:
    """Doctor occupancy verdict == checker invariant 6, both ways."""

    def test_underfull_page_without_escape_both_flag(self, unit2):
        tree = grown(unit2)
        assert tree.stats.deferred_splits == 0
        assert tree.stats.deferred_merges == 0
        page_id = underfill_data_page(tree)
        with pytest.raises(TreeInvariantError, match="minimum"):
            check_tree(tree, check_occupancy=True)
        with GuaranteeMonitor(tree) as monitor:  # seeds post-surgery
            report = evaluate(monitor)
        assert report.verdicts["occupancy"] == VIOLATION
        assert not report.ok
        [finding] = [f for f in report.violations]
        assert page_id in finding.pages

    def test_underfull_page_with_escape_both_tolerate(self, unit2):
        tree = grown(unit2)
        underfill_data_page(tree)
        tree.stats.deferred_merges += 1  # the documented escape hatch
        check_tree(tree, check_occupancy=True)  # must not raise
        with GuaranteeMonitor(tree) as monitor:
            report = evaluate(monitor)
        assert report.verdicts["occupancy"] == WARNING
        assert report.ok  # warnings do not fail the doctor
        [finding] = report.warnings
        assert "deferred" in finding.message

    def test_occupancy_skip_matches_checker_flag(self, unit2):
        """check_occupancy=False is the checker-side opt-out; the doctor
        has no such switch, so a clean tree satisfies both regardless."""
        tree = grown(unit2)
        check_tree(tree, check_occupancy=False)
        check_tree(tree, check_occupancy=True)
        with GuaranteeMonitor(tree) as monitor:
            assert evaluate(monitor).verdicts["occupancy"] == OK


class TestReportShape:
    def test_verdicts_take_worst_severity(self):
        report = HealthReport(
            findings=[
                HealthFinding("occupancy", OK, "fine", level=0),
                HealthFinding("occupancy", WARNING, "escaped", level=1),
                HealthFinding("height", VIOLATION, "too tall"),
            ]
        )
        assert report.verdicts["occupancy"] == WARNING
        assert report.verdicts["height"] == VIOLATION
        assert report.verdicts["no_cascade"] == OK
        assert not report.ok
        assert len(report.violations) == 1
        assert len(report.warnings) == 1

    def test_to_dict_round_trip(self):
        import json

        report = HealthReport(
            findings=[
                HealthFinding(
                    "occupancy",
                    VIOLATION,
                    "bad",
                    level=0,
                    pages=(3, 5),
                    observed=1,
                    bound=2,
                )
            ]
        )
        data = report.to_dict()
        json.dumps(data)
        assert data["ok"] is False
        assert data["findings"][0]["pages"] == [3, 5]

    def test_finding_to_dict_omits_absent_fields(self):
        data = HealthFinding("height", OK, "fine").to_dict()
        assert set(data) == {"guarantee", "severity", "message"}
