"""Tests for the trace sinks and the JSONL round-trip."""

import pytest

from repro.errors import ReproError
from repro.obs.events import OP_BEGIN, PAGE_READ, TraceEvent
from repro.obs.sinks import JsonlSink, NullSink, RingSink, TraceSink, read_jsonl


def make_events(n: int) -> list[TraceEvent]:
    return [
        TraceEvent(seq=i + 1, op=0, kind=PAGE_READ, fields={"page": i})
        for i in range(n)
    ]


class TestNullSink:
    def test_discards_everything(self):
        sink = NullSink()
        for event in make_events(3):
            sink.emit(event)
        sink.close()  # nothing to assert beyond "does not raise"

    def test_satisfies_protocol(self):
        assert isinstance(NullSink(), TraceSink)


class TestRingSink:
    def test_retains_in_order(self):
        sink = RingSink(capacity=8)
        events = make_events(5)
        for event in events:
            sink.emit(event)
        assert sink.events() == events
        assert len(sink) == 5
        assert sink.dropped == 0

    def test_overflow_drops_oldest(self):
        sink = RingSink(capacity=3)
        events = make_events(5)
        for event in events:
            sink.emit(event)
        assert sink.events() == events[2:]
        assert sink.dropped == 2

    def test_clear_resets_buffer_and_dropped(self):
        sink = RingSink(capacity=2)
        for event in make_events(4):
            sink.emit(event)
        sink.clear()
        assert sink.events() == []
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ReproError, match="capacity"):
            RingSink(capacity=0)

    def test_satisfies_protocol(self):
        assert isinstance(RingSink(), TraceSink)

    def test_publish_exposes_overflow_as_gauges(self):
        from repro.obs.metrics import MetricsRegistry

        sink = RingSink(capacity=3)
        for event in make_events(5):
            sink.emit(event)
        registry = MetricsRegistry()
        sink.publish(registry)
        snap = registry.snapshot()
        assert snap["trace.ring.dropped"]["value"] == 2
        assert snap["trace.ring.retained"]["value"] == 3
        assert snap["trace.ring.capacity"]["value"] == 3

    def test_publish_tracks_current_state(self):
        from repro.obs.metrics import MetricsRegistry

        sink = RingSink(capacity=4)
        registry = MetricsRegistry()
        sink.publish(registry, prefix="ring")
        assert registry.snapshot()["ring.dropped"]["value"] == 0
        for event in make_events(6):
            sink.emit(event)
        sink.publish(registry, prefix="ring")
        assert registry.snapshot()["ring.dropped"]["value"] == 2


class TestJsonlSink:
    def test_write_and_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            TraceEvent(seq=1, op=1, kind=OP_BEGIN, fields={"name": "insert"}),
            TraceEvent(seq=2, op=1, kind=PAGE_READ, fields={"page": 4}),
        ]
        with JsonlSink(path) as sink:
            for event in events:
                sink.emit(event)
            assert sink.count == 2
        assert read_jsonl(path) == events

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        with pytest.raises(ReproError, match="closed"):
            sink.emit(make_events(1)[0])

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot open"):
            JsonlSink(tmp_path / "missing-dir" / "trace.jsonl")

    def test_satisfies_protocol(self, tmp_path):
        with JsonlSink(tmp_path / "trace.jsonl") as sink:
            assert isinstance(sink, TraceSink)


class TestReadJsonl:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"seq": 1, "op": 0, "kind": "page_read"}\n\n')
        assert len(read_jsonl(path)) == 1

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"seq": 1, "op": 0, "kind": "page_read"}\nnot json\n')
        with pytest.raises(ReproError, match=":2:"):
            read_jsonl(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            read_jsonl(tmp_path / "absent.jsonl")
