"""Tests for query EXPLAIN: reports, dispatch, and tracer restoration."""

import json

import pytest

from repro.core.tree import BVTree
from repro.errors import GeometryError, ReproError
from repro.obs.explain import ExplainReport, _fold
from repro.obs.sinks import RingSink
from tests.conftest import make_points

POINTS = make_points(400, 2, seed=21)


@pytest.fixture
def tree(unit2):
    t = BVTree(unit2, data_capacity=4, fanout=4)
    for i, p in enumerate(POINTS):
        t.insert(p, i, replace=True)
    return t


class TestExplainPoint:
    def test_found_report(self, tree):
        rep = tree.explain(POINTS[0])
        assert rep.kind == "point"
        assert rep.query == {"point": list(POINTS[0])}
        assert rep.result["found"] is True
        assert rep.result["value"] == repr(0)
        # Paper §6: an exact match touches exactly height + 1 pages.
        assert rep.pages_touched == tree.height + 1
        assert len(rep.steps) == tree.height
        assert rep.events > 0
        assert rep.truncated is False

    def test_missing_point_still_full_descent(self, tree):
        rep = tree.explain((0.9911, 0.0123))
        assert rep.result == {"found": False}
        assert rep.pages_touched == tree.height + 1

    def test_steps_record_descent_details(self, tree):
        rep = tree.explain(POINTS[7])
        for step in rep.steps:
            assert step["via"] in ("guard", "native")
            assert step["guard_set"] >= 0
        assert sum(rep.visited_by_level.values()) == len(rep.steps)


class TestExplainRange:
    def test_report_matches_query(self, tree):
        lows, highs = (0.2, 0.2), (0.45, 0.45)
        rep = tree.explain(rect=(lows, highs))
        result = tree.range_query(lows, highs)
        assert rep.kind == "range"
        assert rep.result["records"] == len(result)
        assert rep.result["pages_visited"] == result.pages_visited
        assert rep.result["data_pages_visited"] == result.data_pages_visited
        assert rep.visits and rep.prunes
        assert rep.pages_touched > 0

    def test_prunes_carry_the_cut_off_dimension(self, tree):
        rep = tree.explain(rect=((0.0, 0.0), (0.1, 0.1)))
        assert any("dim" in prune for prune in rep.prunes)


class TestExplainKnn:
    def test_report(self, tree):
        rep = tree.explain(knn=(0.5, 0.5), k=3)
        assert rep.kind == "knn"
        assert rep.query == {"point": [0.5, 0.5], "k": 3}
        assert rep.result["neighbours"] == 3
        assert rep.result["max_distance"] is not None
        assert rep.visits
        assert rep.pages_touched > 0


class TestDispatch:
    def test_requires_exactly_one_query(self, tree):
        with pytest.raises(ReproError, match="exactly one"):
            tree.explain()
        with pytest.raises(ReproError, match="exactly one"):
            tree.explain(POINTS[0], knn=POINTS[1])


class TestCaptureHygiene:
    def test_tracer_restored_after_explain(self, tree):
        saved = tree.tracer
        tree.explain(POINTS[3])
        assert tree.tracer is saved
        assert tree.store.tracer is saved
        assert saved.enabled is False

    def test_tracer_restored_when_query_raises(self, tree):
        saved = tree.tracer
        with pytest.raises(GeometryError):
            tree.explain(rect=((0.0,), (1.0,)))
        assert tree.tracer is saved
        assert tree.store.tracer is saved

    def test_caller_sink_sees_nothing_from_explain(self, tree):
        sink = RingSink()
        tree.tracer.attach(sink)
        try:
            tree.explain(POINTS[5])
        finally:
            tree.tracer.detach()
        # The capture tracer replaced ours for the duration, so the
        # explained query must not leak into the caller's capture.
        assert len(sink) == 0


class TestReportRendering:
    def test_to_dict_is_json_ready(self, tree):
        rep = tree.explain(rect=((0.1, 0.1), (0.6, 0.6)))
        encoded = json.loads(json.dumps(rep.to_dict()))
        assert encoded["kind"] == "range"
        assert encoded["pages_touched"] == rep.pages_touched

    def test_render_text_point(self, tree):
        text = tree.explain(POINTS[0]).render_text()
        assert text.startswith("EXPLAIN point")
        assert "pages touched" in text
        assert "descent:" in text

    def test_render_text_truncates_prune_rows(self, tree):
        rep = tree.explain(rect=((0.0, 0.0), (0.05, 0.05)))
        assert len(rep.prunes) > 1
        text = rep.render_text(max_rows=1)
        assert "more" in text

    def test_fold_marks_truncated_capture(self):
        rep = _fold(
            ExplainReport(kind="point", query={}, pages_touched=0), [], 3
        )
        assert rep.truncated is True
