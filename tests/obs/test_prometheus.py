"""Tests for Prometheus exposition, its lint, and the JSONL snapshotter."""

import json
import random

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    MetricsSnapshotter,
    lint_prometheus,
    to_prometheus,
)


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("ops.total").inc(42)
    registry.gauge("buffer.hit_ratio").set(0.875)
    hist = registry.histogram("descent.nodes", (1, 2, 4, 8))
    for value in (1, 1, 3, 5, 9, 20):
        hist.observe(value)
    return registry


class TestExposition:
    def test_counter_exposes_with_total_suffix(self):
        text = to_prometheus(sample_registry())
        assert "# TYPE repro_ops_total_total counter" in text
        assert "repro_ops_total_total 42" in text

    def test_gauge_exposes_value(self):
        text = to_prometheus(sample_registry())
        assert "repro_buffer_hit_ratio 0.875" in text

    def test_unset_gauge_is_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        text = to_prometheus(registry)
        assert "never_set" not in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(sample_registry())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_descent_nodes_bucket")
        ]
        counts = [int(line.split()[-1]) for line in lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in lines[-1]
        assert counts[-1] == 6
        assert "repro_descent_nodes_count 6" in text
        assert "repro_descent_nodes_sum 39" in text

    def test_names_are_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("trace.ring.dropped").inc()
        text = to_prometheus(registry, namespace="bv")
        assert "bv_trace_ring_dropped_total 1" in text

    def test_deterministic_order(self):
        assert to_prometheus(sample_registry()) == to_prometheus(
            sample_registry()
        )


class TestPromLint:
    def test_clean_exposition_passes(self):
        assert lint_prometheus(to_prometheus(sample_registry())) == []

    def test_flags_malformed_sample_line(self):
        problems = lint_prometheus("repro_ops_total\n")
        assert problems

    def test_flags_duplicate_sample(self):
        text = "repro_x 1\nrepro_x 2\n"
        assert any("repeat" in p or "duplicate" in p.lower()
                   for p in lint_prometheus(text))

    def test_flags_non_cumulative_histogram(self):
        text = "\n".join([
            '# HELP repro_h x (histogram)',
            '# TYPE repro_h histogram',
            'repro_h_bucket{le="1"} 5',
            'repro_h_bucket{le="2"} 3',
            'repro_h_bucket{le="+Inf"} 5',
            'repro_h_sum 9',
            'repro_h_count 5',
        ])
        assert lint_prometheus(text)

    def test_flags_missing_inf_bucket(self):
        text = "\n".join([
            '# HELP repro_h x (histogram)',
            '# TYPE repro_h histogram',
            'repro_h_bucket{le="1"} 5',
            'repro_h_sum 9',
            'repro_h_count 5',
        ])
        assert lint_prometheus(text)

    def test_profiler_registry_exposition_is_clean(self, unit2):
        from repro.core.tree import BVTree
        from repro.obs.profile import OpProfiler
        from tests.conftest import make_points

        tree = BVTree(unit2, data_capacity=8, fanout=8)
        points = make_points(150, 2, seed=3)
        tree.bulk_load(
            [(p, i) for i, p in enumerate(points)], replace=True
        )
        registry = MetricsRegistry()
        profiler = OpProfiler(tree, registry=registry).attach()
        for point in points[:30]:
            tree.get(point)
        tree.range_query((0.1, 0.1), (0.6, 0.6))
        tree.insert((0.42, 0.24), None, replace=True)
        profiler.flush()
        assert lint_prometheus(to_prometheus(registry)) == []


class TestObserveMany:
    def test_matches_sequential_observe(self):
        rng = random.Random(17)
        values = [rng.uniform(0, 600) for _ in range(500)]
        buckets = (10.0, 50.0, 100.0, 250.0, 500.0)
        one = Histogram("a", buckets)
        for value in values:
            one.observe(value)
        many = Histogram("b", buckets)
        many.observe_many(values)
        assert many.counts == one.counts
        assert many.count == one.count
        assert many.total == pytest.approx(one.total)

    def test_bound_ties_match(self):
        """Values equal to a bucket bound land identically both ways."""
        buckets = (1.0, 2.0, 4.0)
        values = [1.0, 1.0, 2.0, 4.0, 4.0, 5.0]
        one = Histogram("a", buckets)
        for value in values:
            one.observe(value)
        many = Histogram("b", buckets)
        many.observe_many(values)
        assert many.counts == one.counts

    def test_empty_batch_is_noop(self):
        hist = Histogram("a", (1.0,))
        hist.observe_many([])
        assert hist.count == 0

    def test_incremental_batches_accumulate(self):
        hist = Histogram("a", (1.0, 3.0))
        hist.observe_many([0.5, 2.0])
        hist.observe_many([2.5, 9.0])
        assert hist.count == 4
        assert hist.counts == [1, 2, 1]


class TestMetricsSnapshotter:
    def test_rejects_nonpositive_every(self, tmp_path):
        with pytest.raises(ReproError, match="every"):
            MetricsSnapshotter(
                MetricsRegistry(), tmp_path / "m.jsonl", every=0
            )

    def test_ticks_write_jsonl_lines(self, tmp_path):
        registry = MetricsRegistry()
        ops = registry.counter("ops")
        path = tmp_path / "metrics.jsonl"
        snapshotter = MetricsSnapshotter(registry, path, every=10)
        for _ in range(25):
            ops.inc()
            snapshotter.tick()
        snapshotter.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [line["ops"] for line in lines] == [10, 20]
        assert lines[1]["metrics"]["ops"]["value"] == 20
        assert snapshotter.count == 2

    def test_prepare_hook_runs_before_each_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        gauge = registry.gauge("derived")
        calls = []

        def prepare(reg):
            calls.append(reg)
            gauge.set(len(calls))

        snapshotter = MetricsSnapshotter(
            registry, tmp_path / "m.jsonl", every=1, prepare=prepare
        )
        snapshotter.tick()
        snapshotter.tick()
        snapshotter.close()
        lines = [
            json.loads(l)
            for l in (tmp_path / "m.jsonl").read_text().splitlines()
        ]
        assert calls == [registry, registry]
        assert lines[0]["metrics"]["derived"]["value"] == 1
        assert lines[1]["metrics"]["derived"]["value"] == 2

    def test_final_snapshot_on_demand(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        path = tmp_path / "m.jsonl"
        snapshotter = MetricsSnapshotter(registry, path, every=1000)
        snapshotter.tick()
        snapshotter.snapshot()  # explicit flush despite every=1000
        snapshotter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
