"""Tests for the metrics instruments, registry and trace-fed sink."""

import pytest

from repro.errors import ReproError
from repro.obs.events import (
    DATA_SPLIT,
    DESCENT_STEP,
    GUARD_HIT,
    OP_BEGIN,
    OP_END,
    PAGE_READ,
    TraceEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    NODES_VISITED_BUCKETS,
    TimeSeriesSink,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"type": "counter", "value": 5}

    def test_rejects_decrease(self):
        with pytest.raises(ReproError, match="cannot decrease"):
            Counter("ops").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("ratio")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.to_dict() == {"type": "gauge", "value": 0.75}

    def test_unset_gauge_reads_none(self):
        """Empty-state contract: never-set is distinguishable from 0.0."""
        gauge = Gauge("ratio")
        assert gauge.value is None
        assert gauge.to_dict() == {"type": "gauge", "value": None}
        gauge.set(0.0)
        assert gauge.value == 0.0


class TestHistogram:
    def test_buckets_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        for value in (1, 2, 2, 3, 9):
            hist.observe(value)
        # counts: <=1, <=2, <=4, overflow
        assert hist.counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.total == 17.0
        assert hist.mean == pytest.approx(3.4)

    def test_empty_mean_is_none(self):
        """Empty-state contract: no observations means no mean."""
        hist = Histogram("h", buckets=(1,))
        assert hist.mean is None
        assert hist.to_dict()["mean"] is None

    def test_quantile_empty_is_none(self):
        assert Histogram("h", buckets=(1, 2)).quantile(0.5) is None

    def test_quantile_bucket_upper_bounds(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        for value in (1, 1, 2, 3):
            hist.observe(value)
        assert hist.quantile(0.0) == 1.0  # rank clamps to 1
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.75) == 2.0
        assert hist.quantile(1.0) == 4.0

    def test_quantile_overflow_bucket_is_none(self):
        hist = Histogram("h", buckets=(1,))
        hist.observe(99)
        assert hist.quantile(1.0) is None

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ReproError, match="quantile"):
            Histogram("h", buckets=(1,)).quantile(1.5)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ReproError, match="at least one bucket"):
            Histogram("h", buckets=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ReproError, match="strictly increase"):
            Histogram("h", buckets=(1, 1, 2))

    def test_to_dict_shape(self):
        hist = Histogram("h", buckets=(2, 4))
        hist.observe(3)
        assert hist.to_dict() == {
            "type": "histogram",
            "buckets": [2, 4],
            "counts": [0, 1, 0],
            "count": 1,
            "total": 3.0,
            "mean": 3.0,
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        hist = registry.histogram("h", buckets=(1, 2))
        assert registry.histogram("h") is hist

    def test_type_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ReproError, match="not a Gauge"):
            registry.gauge("a")
        with pytest.raises(ReproError, match="not a Histogram"):
            registry.histogram("a", buckets=(1,))

    def test_histogram_needs_buckets_on_first_use(self):
        with pytest.raises(ReproError, match="pass its buckets"):
            MetricsRegistry().histogram("h")

    def test_names_and_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1.5)
        assert registry.names() == ["a", "b"]
        snap = registry.snapshot()
        assert snap["a"] == {"type": "gauge", "value": 1.5}
        assert snap["b"] == {"type": "counter", "value": 1}
        registry.reset()
        assert registry.names() == []


def span(op: int, inner: list[tuple[str, dict]]) -> list[TraceEvent]:
    """A synthetic operation span with ``inner`` events, seq-stamped later."""
    events = [(OP_BEGIN, {"name": "get"})] + inner + [(OP_END, {"name": "get"})]
    return [
        TraceEvent(seq=0, op=op, kind=kind, fields=fields)
        for kind, fields in events
    ]


class TestMetricsSink:
    def test_rejects_non_positive_sample_every(self):
        with pytest.raises(ReproError, match="sample_every"):
            MetricsSink(sample_every=0)

    def test_counts_every_kind(self):
        sink = MetricsSink()
        for event in span(1, [(PAGE_READ, {"page": 1, "physical": True})]):
            sink.emit(event)
        snap = sink.snapshot()
        assert snap["events.op_begin"]["value"] == 1
        assert snap["events.page_read"]["value"] == 1
        assert snap["events.op_end"]["value"] == 1

    def test_per_descent_histograms_observed_at_op_end(self):
        sink = MetricsSink()
        inner = [
            (DESCENT_STEP, {"level": 2}),
            (GUARD_HIT, {"level": 1}),
            (DESCENT_STEP, {"level": 1}),
        ]
        for event in span(1, inner):
            sink.emit(event)
        for event in span(2, [(DESCENT_STEP, {"level": 1})]):
            sink.emit(event)
        snap = sink.snapshot()
        visited = snap["descent.nodes_visited"]
        assert visited["count"] == 2
        assert visited["total"] == 3.0
        assert visited["buckets"] == list(NODES_VISITED_BUCKETS)
        guards = snap["descent.guard_checks"]
        assert guards["count"] == 1
        assert guards["total"] == 1.0

    def test_span_without_descent_records_no_observation(self):
        sink = MetricsSink()
        for event in span(1, []):
            sink.emit(event)
        assert "descent.nodes_visited" not in sink.snapshot()

    def test_split_fanout_from_moved_field(self):
        sink = MetricsSink()
        sink.emit(TraceEvent(1, 0, DATA_SPLIT, {"key": "0", "moved": 3}))
        sink.emit(TraceEvent(2, 0, DATA_SPLIT, {"key": "1"}))  # no moved
        snap = sink.snapshot()
        assert snap["split.fanout"]["count"] == 1
        assert snap["split.fanout"]["total"] == 3.0

    def test_hit_ratio_gauge_and_series(self):
        sink = MetricsSink(sample_every=2)
        reads = [True, False, False, True]  # physical flags
        for i, physical in enumerate(reads):
            sink.emit(
                TraceEvent(i + 1, 0, PAGE_READ, {"page": i, "physical": physical})
            )
        snap = sink.snapshot()
        assert snap["buffer.hit_ratio"]["value"] == pytest.approx(0.5)
        samples = snap["buffer.hit_ratio_series"]["samples"]
        assert samples == [
            {"reads": 2, "ratio": pytest.approx(0.5)},
            {"reads": 4, "ratio": pytest.approx(0.5)},
        ]

    def test_series_is_bounded(self):
        sink = MetricsSink(sample_every=1)
        for i in range(MetricsSink.MAX_SAMPLES + 10):
            sink.emit(TraceEvent(i + 1, 0, PAGE_READ, {"physical": False}))
        assert len(sink.hit_ratio_series) == MetricsSink.MAX_SAMPLES


class TestTimeSeriesSink:
    def test_rejects_bad_parameters(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError, match="every"):
            TimeSeriesSink(registry, every=0)
        with pytest.raises(ReproError, match="max_samples"):
            TimeSeriesSink(registry, every=1, max_samples=1)

    def test_columnar_shape_shares_ops_length(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        series = TimeSeriesSink(registry, every=2)
        for i in range(6):
            gauge.set(float(i))
            series.tick()
        assert series.ops == [2, 4, 6]
        assert series.columns["g"] == [1.0, 3.0, 5.0]

    def test_op_end_events_drive_sampling(self):
        registry = MetricsRegistry()
        registry.counter("c")
        series = TimeSeriesSink(registry, every=1)
        for i, kind in enumerate([OP_BEGIN, OP_END, PAGE_READ, OP_END]):
            series.emit(TraceEvent(seq=i, op=1, kind=kind, fields={}))
        assert series.ops == [1, 2]  # only op_end ticks

    def test_late_metric_backfills_none_both_ways(self):
        registry = MetricsRegistry()
        early = registry.gauge("early")
        early.set(1.0)
        series = TimeSeriesSink(registry, every=1)
        series.tick()
        late = registry.gauge("late")
        late.set(2.0)
        series.tick()
        assert series.columns["early"] == [1.0, 1.0]
        assert series.columns["late"] == [None, 2.0]

    def test_histogram_contributes_count_and_mean_columns(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(4, 8))
        series = TimeSeriesSink(registry, every=1)
        series.tick()  # empty histogram: count 0, mean None
        hist.observe(3)
        hist.observe(5)
        series.tick()
        assert series.columns["h.count"] == [0, 2]
        assert series.columns["h.mean"] == [None, 4.0]

    def test_prepare_runs_before_each_sample(self):
        registry = MetricsRegistry()
        calls = []

        def prepare(reg):
            calls.append(reg)
            reg.gauge("fresh").set(len(calls))

        series = TimeSeriesSink(registry, every=1, prepare=prepare)
        series.tick()
        series.tick()
        assert calls == [registry, registry]
        assert series.columns["fresh"] == [1, 2]

    def test_compaction_halves_samples_and_doubles_stride(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        series = TimeSeriesSink(registry, every=1, max_samples=4)
        for _ in range(5):
            counter.inc()
            series.tick()
        # Fifth sample trips compaction: every other sample kept
        # (newest included), stride doubled.
        assert series.every == 2
        assert len(series.ops) <= 4
        assert series.ops[-1] == 5
        # The counter bumps once per tick, so its column tracks ops.
        assert series.columns["c"] == series.ops
        assert all(len(col) == len(series.ops) for col in series.columns.values())

    def test_to_dict_round_trip_shape(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(7.0)
        series = TimeSeriesSink(registry, every=1)
        series.tick()
        data = series.to_dict()
        assert data["type"] == "timeseries"
        assert data["every"] == 1
        assert data["ops"] == [1]
        assert data["metrics"] == {"g": [7.0]}
