"""Tests for the per-operation cost profiler and the slow-op log."""

import json

import pytest

from repro.core.tree import BVTree
from repro.errors import KeyNotFoundError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import GET_BATCH, OpProfiler, SlowOpLog
from repro.obs.sinks import RingSink
from tests.conftest import make_points


def build(space, n=200, data_capacity=8, fanout=8, layout=None):
    tree = BVTree(
        space, data_capacity=data_capacity, fanout=fanout, layout=layout
    )
    points = make_points(n, space.ndim, seed=11)
    tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
    return tree, points


class TestDirectReadPath:
    def test_counts_every_get(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        for point in points[:50]:
            tree.get(point)
        profile = profiler.profile("get")
        assert profile.ops == 50
        assert profile.errors.value == 0

    def test_get_pages_is_descent_depth(self, unit2):
        """Every exact-match descent reads exactly height + 1 pages."""
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        for point in points[:20]:
            tree.get(point)
        profile = profiler.profile("get")
        assert profile.pages.mean == pytest.approx(tree.height + 1)

    def test_samples_buffer_until_read(self, unit2):
        """Hot-path gets land in the raw buffer; read surfaces fold it."""
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        n = min(30, GET_BATCH - 1)
        for point in points[:n]:
            tree.get(point)
        assert len(profiler._get_raw) == n
        assert profiler.profile("get").ops == n  # profile() flushes
        assert profiler._get_raw == []

    def test_batch_overflow_folds_inline(self, unit2):
        tree, points = build(unit2, n=64)
        profiler = OpProfiler(tree).attach()
        lookups = 0
        while lookups <= GET_BATCH:
            for point in points:
                tree.get(point)
            lookups += len(points)
        assert len(profiler._get_raw) < GET_BATCH
        assert profiler.profile("get").ops == lookups

    def test_counts_range_and_knn(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        tree.range_query((0.1, 0.1), (0.4, 0.4))
        tree.range_query((0.5, 0.5), (0.9, 0.9))
        tree.nearest(points[0], k=3)
        assert profiler.profile("range").ops == 2
        assert profiler.profile("knn").ops == 1
        assert profiler.profile("range").pages.total > 0

    def test_miss_counts_as_error_not_op(self, unit2):
        tree, _ = build(unit2)
        profiler = OpProfiler(tree).attach()
        with pytest.raises(KeyNotFoundError):
            tree.get((0.123456, 0.654321))
        profile = profiler.profile("get")
        assert profile.errors.value == 1
        assert profile.ops == 0

    def test_latency_histogram_latencies_positive(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        for point in points[:10]:
            tree.get(point)
        profile = profiler.profile("get")
        assert profile.latency_us.total > 0
        assert profile.max_latency_us.value > 0


class TestTapUpdatePath:
    def test_counts_inserts_with_io(self, unit2):
        tree, _ = build(unit2)
        profiler = OpProfiler(tree).attach()
        extra = make_points(40, 2, seed=23)
        for i, point in enumerate(extra):
            tree.insert(point, i, replace=True)
        profile = profiler.profile("insert")
        assert profile.ops == 40
        assert profile.pages_written.value > 0
        assert profile.pages.total > 0

    def test_cascade_depth_matches_split_counters(self, unit2):
        tree = BVTree(unit2, data_capacity=4, fanout=4)
        profiler = OpProfiler(tree).attach()
        before = tree.stats.snapshot()
        for i, point in enumerate(make_points(150, 2, seed=5)):
            tree.insert(point, i, replace=True)
        delta = tree.stats.delta(before)
        profile = profiler.profile("insert")
        cascade_total = profile.cascade.total
        assert cascade_total == delta.data_splits + delta.index_splits
        assert profile.max_cascade >= 1

    def test_delete_profiled(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        for point in points[:15]:
            tree.delete(point)
        assert profiler.profile("delete").ops == 15

    def test_bulk_load_profiled(self, unit2):
        tree = BVTree(unit2, data_capacity=8, fanout=8)
        profiler = OpProfiler(tree).attach()
        points = make_points(120, 2, seed=9)
        tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
        profile = profiler.profile("bulk_load")
        assert profile.ops == 1
        assert profile.cascade is not None

    def test_read_kinds_have_no_cascade_histogram(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        tree.get(points[0])
        assert profiler.profile("get").cascade is None


class TestSpanModeReads:
    def test_reads_under_full_sink_counted_once(self, unit2):
        """With a sink enabled reads open spans; the tap covers them."""
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        tree.tracer.attach(RingSink(capacity=4096))
        try:
            for point in points[:12]:
                tree.get(point)
            tree.range_query((0.2, 0.2), (0.6, 0.6))
        finally:
            tree.tracer.detach()
        assert profiler.profile("get").ops == 12
        assert profiler.profile("range").ops == 1


class TestLifecycle:
    def test_attach_registers_both_hooks(self, unit2):
        tree, _ = build(unit2)
        profiler = OpProfiler(tree)
        assert tree.tracer.profiler is None
        profiler.attach()
        assert tree.tracer.profiler is profiler
        assert profiler in tree.tracer.taps

    def test_detach_restores_tracer(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        tree.get(points[0])
        profiler.detach()
        assert tree.tracer.profiler is None
        assert profiler not in tree.tracer.taps
        assert not tree.tracer.structural
        # detach flushed the raw buffer: the profile is readable
        assert profiler.profiles["get"].ops == 1

    def test_attach_detach_idempotent(self, unit2):
        tree, _ = build(unit2)
        profiler = OpProfiler(tree)
        profiler.attach()
        profiler.attach()
        profiler.detach()
        profiler.detach()
        assert tree.tracer.profiler is None

    def test_context_manager(self, unit2):
        tree, points = build(unit2)
        with OpProfiler(tree) as profiler:
            tree.get(points[0])
        assert tree.tracer.profiler is None
        assert profiler.profiles["get"].ops == 1

    def test_detached_tree_pays_no_profiling(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        profiler.detach()
        tree.get(points[0])
        assert "get" not in profiler.profiles or (
            profiler.profiles["get"].ops == 0
        )


class TestRegistryIntegration:
    def test_instruments_live_in_registry(self, unit2):
        tree, points = build(unit2)
        registry = MetricsRegistry()
        profiler = OpProfiler(tree, registry=registry).attach()
        tree.get(points[0])
        tree.insert((0.9991, 0.0002), None, replace=True)
        profiler.flush()
        snap = registry.snapshot()
        assert "profile.get.latency_us" in snap
        assert "profile.get.pages" in snap
        assert "profile.insert.cascade" in snap
        assert snap["profile.get.latency_us"]["count"] == 1

    def test_to_dict_summary(self, unit2):
        tree, points = build(unit2)
        profiler = OpProfiler(tree).attach()
        for point in points[:5]:
            tree.get(point)
        summary = profiler.to_dict()
        assert summary["layout"] == tree.layout
        assert summary["kinds"]["get"]["ops"] == 5
        assert summary["kinds"]["get"]["pages"]["mean"] == pytest.approx(
            tree.height + 1
        )


class TestSlowOpLog:
    def test_requires_a_threshold(self):
        with pytest.raises(ReproError, match="at least one threshold"):
            SlowOpLog()

    def test_rejects_nonpositive_keep(self):
        with pytest.raises(ReproError, match="keep"):
            SlowOpLog(latency_us=1.0, keep=0)

    def test_matches_uses_inclusive_thresholds(self):
        log = SlowOpLog(latency_us=100.0, pages=10)
        assert log.matches(100.0, 0)
        assert log.matches(0.0, 10)
        assert not log.matches(99.9, 9)

    def test_window_rotates_but_count_totals(self):
        log = SlowOpLog(latency_us=0.0, keep=3)
        for i in range(5):
            log.record({"kind": "get", "i": i})
        assert log.count == 5
        assert [r["i"] for r in log.records] == [2, 3, 4]
        assert log.last["i"] == 4

    def test_jsonl_file_round_trips(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowOpLog(path, latency_us=0.0) as log:
            log.record({"kind": "get", "latency_us": 12.5})
            log.record({"kind": "range", "latency_us": 250.0})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "get",
            "range",
        ]


class TestSlowOpCapture:
    def test_forced_slow_get_has_valid_explain(self, unit2, tmp_path):
        """A pages>=1 threshold makes every get slow; EXPLAIN attaches."""
        tree, points = build(unit2)
        path = tmp_path / "slow.jsonl"
        log = SlowOpLog(path, pages=1)
        profiler = OpProfiler(tree, slow_log=log).attach()
        tree.get(points[0])
        profiler.flush()
        assert log.count == 1
        entry = log.last
        assert entry["kind"] == "get"
        assert entry["pages"] == tree.height + 1
        assert entry["layout"] == tree.layout
        report = entry["explain"]
        assert report["pages_touched"] == tree.height + 1
        assert report["kind"] == "point"
        # the JSONL line carries the same record
        parsed = json.loads(path.read_text().splitlines()[-1])
        assert parsed["explain"]["pages_touched"] == tree.height + 1
        log.close()

    def test_slow_range_and_knn_explained(self, unit2):
        tree, points = build(unit2)
        log = SlowOpLog(latency_us=0.0)
        profiler = OpProfiler(tree, slow_log=log).attach()
        tree.range_query((0.1, 0.1), (0.5, 0.5))
        tree.nearest(points[3], k=2)
        kinds = [r["kind"] for r in log.records]
        assert kinds == ["range", "knn"]
        assert log.records[0]["explain"]["kind"] == "range"
        assert log.records[1]["explain"]["kind"] == "knn"
        assert log.records[1]["detail"]["k"] == 2

    def test_slow_insert_has_no_explain(self, unit2):
        tree, _ = build(unit2)
        log = SlowOpLog(latency_us=0.0)
        OpProfiler(tree, slow_log=log).attach()
        tree.insert((0.31337, 0.73331), "v", replace=True)
        entry = log.last
        assert entry["kind"] == "insert"
        assert "explain" not in entry

    def test_explain_can_be_disabled(self, unit2):
        tree, points = build(unit2)
        log = SlowOpLog(latency_us=0.0, explain_queries=False)
        OpProfiler(tree, slow_log=log).attach()
        tree.get(points[0])
        assert "explain" not in log.last

    def test_explain_rerun_not_profiled(self, unit2):
        """The EXPLAIN re-run must not inflate the profiles."""
        tree, points = build(unit2)
        log = SlowOpLog(pages=1)
        profiler = OpProfiler(tree, slow_log=log).attach()
        tree.get(points[0])
        assert profiler.profile("get").ops == 1
        assert log.count == 1
