"""Tests for the ``repro top`` dashboard engine."""

import json

import pytest

from repro.core.tree import BVTree
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, lint_prometheus
from repro.obs.profile import SlowOpLog
from repro.obs.top import render_top_frame, run_top
from repro.storage import BufferPool, PageStore
from tests.conftest import make_points


def build(unit2, n=150, buffered=False):
    store = BufferPool(PageStore(), capacity=64) if buffered else None
    tree = BVTree(unit2, data_capacity=8, fanout=8, store=store)
    points = make_points(n, 2, seed=31)
    tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
    return tree, points


def workload(points):
    ops = []
    for i, point in enumerate(points[:60]):
        ops.append(("get", point))
        if i % 10 == 0:
            ops.append(("range", (0.1, 0.1), (0.5, 0.5)))
        if i % 15 == 0:
            ops.append(("knn", point, 2))
        if i % 7 == 0:
            ops.append(("insert", (0.001 + i / 1000.0, 0.999 - i / 1000.0)))
    return ops


class TestRunTopOnce:
    def test_drives_stream_and_reports(self, unit2):
        tree, points = build(unit2)
        ops = workload(points)
        result = run_top(tree, ops, once=True)
        assert result.ops_applied == len(ops)
        assert result.frames == 1
        assert result.exit_code == 0
        assert result.health.ok
        assert result.profile["kinds"]["get"]["ops"] == 60
        assert "insert" in result.profile["kinds"]

    def test_frame_text_shows_profiles_and_verdicts(self, unit2):
        tree, points = build(unit2)
        frames = []
        result = run_top(
            tree, workload(points), once=True, emit=frames.append
        )
        assert len(frames) == 1
        text = frames[0]
        assert "repro top" in text
        assert "get" in text
        assert "guarantees:" in text
        assert "PASS" in text
        assert result.last_frame == text
        assert "\x1b" not in text  # once-mode frames carry no ANSI codes

    def test_tracer_restored_after_run(self, unit2):
        tree, points = build(unit2)
        run_top(tree, workload(points), once=True)
        assert tree.tracer.profiler is None
        assert tree.tracer.taps == ()
        assert not tree.tracer.structural

    def test_misses_surface_as_error_counts(self, unit2):
        tree, points = build(unit2)
        ops = [("get", points[0]), ("delete", (0.777123, 0.123777))]
        result = run_top(tree, ops, once=True)
        assert result.ops_applied == 2
        assert result.profile["kinds"]["delete"]["errors"] == 1

    def test_unknown_verb_raises(self, unit2):
        tree, _ = build(unit2)
        with pytest.raises(ReproError, match="insert/delete/get"):
            run_top(tree, [("compact",)], once=True)

    def test_rejects_nonpositive_refresh(self, unit2):
        tree, _ = build(unit2)
        with pytest.raises(ReproError, match="refresh"):
            run_top(tree, [], refresh=0.0)

    def test_buffer_hit_rate_shown_for_buffered_store(self, unit2):
        tree, points = build(unit2, buffered=True)
        frames = []
        run_top(
            tree,
            [("get", p) for p in points[:30]],
            once=True,
            emit=frames.append,
        )
        assert "buffer hit rate" in frames[0]


class TestArtifacts:
    def test_prom_out_is_lint_clean(self, unit2, tmp_path):
        tree, points = build(unit2)
        prom = tmp_path / "metrics.prom"
        registry = MetricsRegistry()
        run_top(
            tree,
            workload(points),
            once=True,
            registry=registry,
            prom_out=prom,
        )
        text = prom.read_text()
        assert lint_prometheus(text) == []
        assert "repro_profile_get_latency_us_count" in text

    def test_metrics_out_streams_snapshots(self, unit2, tmp_path):
        tree, points = build(unit2)
        metrics = tmp_path / "metrics.jsonl"
        result = run_top(
            tree,
            [("get", p) for p in points[:50]],
            once=True,
            metrics_out=metrics,
            metrics_every=20,
        )
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        # two periodic snapshots plus the final one
        assert [line["ops"] for line in lines][:2] == [20, 40]
        assert lines[-1]["metrics"]["profile.get.latency_us"]["count"] == 50
        assert result.registry_snapshot

    def test_slow_log_integration(self, unit2, tmp_path):
        tree, points = build(unit2)
        log = SlowOpLog(tmp_path / "slow.jsonl", pages=1)
        result = run_top(
            tree,
            [("get", points[0])],
            once=True,
            slow_log=log,
        )
        assert result.slow_ops == 1
        entry = json.loads(
            (tmp_path / "slow.jsonl").read_text().splitlines()[0]
        )
        assert entry["kind"] == "get"
        assert entry["explain"]["pages_touched"] == tree.height + 1
        assert "slow ops: 1 captured" in result.last_frame

    def test_to_dict_round_trip(self, unit2):
        tree, points = build(unit2)
        result = run_top(tree, workload(points), once=True)
        data = result.to_dict()
        assert data["ops_applied"] == result.ops_applied
        assert data["exit_code"] == 0
        assert data["health"]["ok"] is True
        assert json.dumps(data)  # JSON-serialisable end to end


class TestRenderFrame:
    def test_renders_minimal_data(self):
        data = {
            "points": 10,
            "height": 1,
            "layout": "object",
            "ops_applied": 5,
            "elapsed_s": 0.5,
            "kinds": [
                {
                    "kind": "get",
                    "ops": 5,
                    "ops_per_s": 10.0,
                    "p50_us": 12.0,
                    "p99_us": 50.0,
                    "mean_us": 20.0,
                    "pages_mean": 2.0,
                    "errors": 0,
                }
            ],
            "buffer_hit_ratio": None,
            "wal_fsyncs": None,
            "verdicts": {"balance": "ok"},
            "max_splits_per_op": 0,
            "slow": None,
        }
        text = render_top_frame(data)
        assert "10 points" in text
        assert "balance PASS" in text
        assert "ops/s" in text
