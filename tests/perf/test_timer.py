"""Unit tests for the measurement primitives."""

import gc

import pytest

from repro.errors import ReproError
from repro.perf.timer import Timing, measure


class TestTiming:
    def test_statistics(self):
        t = Timing(samples=[0.3, 0.1, 0.2])
        assert t.best == 0.1
        assert t.mean == pytest.approx(0.2)
        assert t.median == pytest.approx(0.2)
        assert t.stddev == pytest.approx(0.1)

    def test_single_sample_has_zero_stddev(self):
        assert Timing(samples=[0.5]).stddev == 0.0


class TestMeasure:
    def test_sample_count_excludes_warmup(self):
        calls = []
        timing = measure(lambda _: calls.append(1), repeats=3, warmup=2)
        assert len(timing.samples) == 3
        assert len(calls) == 5

    def test_setup_runs_before_every_execution(self):
        states = []

        def setup():
            states.append(len(states))
            return states[-1]

        seen = []
        measure(seen.append, setup=setup, repeats=2, warmup=1)
        assert states == [0, 1, 2]
        assert seen == [0, 1, 2]

    def test_last_result_comes_from_final_timed_run(self):
        counter = iter(range(10))
        timing = measure(lambda _: next(counter), repeats=3, warmup=1)
        assert timing.last_result == 3

    def test_gc_state_restored(self):
        assert gc.isenabled()
        measure(lambda _: None, repeats=1, warmup=0)
        assert gc.isenabled()
        gc.disable()
        try:
            measure(lambda _: None, repeats=1, warmup=0)
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_gc_disabled_during_samples(self):
        observed = []
        measure(lambda _: observed.append(gc.isenabled()), repeats=2, warmup=1)
        assert observed == [False, False, False]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ReproError):
            measure(lambda _: None, repeats=0)
        with pytest.raises(ReproError):
            measure(lambda _: None, warmup=-1)

    def test_samples_are_positive(self):
        timing = measure(lambda _: sum(range(100)), repeats=2, warmup=0)
        assert all(s > 0 for s in timing.samples)
