"""End-to-end tests of the benchmark runner (tiny scale)."""

import pytest

from repro.errors import ReproError
from repro.perf.registry import REGISTRY, Scale
from repro.perf.results import BenchResult
from repro.perf.runner import derive_metrics, render_text, run_suite

#: Small enough to run in well under a second, large enough to split.
TINY = Scale(
    name="smoke",
    n_points=300,
    n_queries=10,
    n_range_queries=5,
    n_knn_queries=3,
    repeats=1,
    warmup=0,
)


@pytest.fixture(scope="module")
def suite_result():
    return run_suite(TINY, suite="test")


class TestRunSuite:
    def test_runs_every_registered_case(self, suite_result):
        assert [r.name for r in suite_result.results] == list(REGISTRY)

    def test_scale_recorded(self, suite_result):
        assert suite_result.scale["n_points"] == 300
        assert suite_result.suite == "test"

    def test_acceptance_counters_present(self, suite_result):
        native = suite_result.result("range")
        rectpath = suite_result.result("range_rectpath")
        assert native.counters["pages_visited"] > 0
        assert native.counters == rectpath.counters

    def test_derived_metrics(self, suite_result):
        derived = suite_result.derived
        assert derived["bulk_load_speedup"] > 0
        assert derived["range_bitnative_speedup"] > 0
        assert derived["range_pages_equal"] is True
        assert derived["range_records_equal"] is True

    def test_only_selects_cases(self):
        result = run_suite(TINY, only=["bulk_load", "exact_match"])
        assert [r.name for r in result.results] == ["bulk_load", "exact_match"]
        assert "bulk_load_speedup" not in result.derived

    def test_unknown_case_rejected(self):
        with pytest.raises(ReproError):
            run_suite(TINY, only=["nope"])

    def test_progress_callback(self):
        seen = []
        run_suite(TINY, only=["exact_match"], progress=seen.append)
        assert seen == ["exact_match", "observability probe"]

    def test_progress_without_observability(self):
        seen = []
        run_suite(
            TINY,
            only=["exact_match"],
            progress=seen.append,
            observability=False,
        )
        assert seen == ["exact_match"]


class TestDeriveMetrics:
    def _result(self, name, best, counters=None):
        return BenchResult(
            name=name,
            description=name,
            ops=1,
            repeats=1,
            warmup=0,
            samples=[best],
            counters=counters or {},
        )

    def test_speedups(self):
        derived = derive_metrics([
            self._result("insert", 0.9),
            self._result("bulk_load", 0.3),
            self._result("range", 0.5, {"pages_visited": 7, "records_found": 3}),
            self._result(
                "range_rectpath", 1.0, {"pages_visited": 7, "records_found": 3}
            ),
        ])
        assert derived["bulk_load_speedup"] == pytest.approx(3.0)
        assert derived["range_bitnative_speedup"] == pytest.approx(2.0)
        assert derived["range_pages_equal"] is True

    def test_unequal_pages_flagged(self):
        derived = derive_metrics([
            self._result("range", 0.5, {"pages_visited": 7}),
            self._result("range_rectpath", 1.0, {"pages_visited": 8}),
        ])
        assert derived["range_pages_equal"] is False

    def test_partial_suites_skip_metrics(self):
        assert derive_metrics([self._result("insert", 1.0)]) == {}


class TestRenderText:
    def test_report_mentions_cases_and_derived(self, suite_result):
        text = render_text(suite_result)
        for result in suite_result.results:
            assert result.name in text
        assert "bulk_load_speedup" in text
        assert "range_pages_equal" in text

    def test_baseline_comparison_section(self, suite_result):
        text = render_text(suite_result, baseline=suite_result)
        assert "vs baseline" in text
        assert "1.00x" in text

    def test_observability_block(self, suite_result):
        obs = suite_result.observability
        assert obs["overhead"]["disabled_us_per_op"] > 0
        assert obs["overhead"]["ring_us_per_op"] > 0
        assert obs["metrics"]["descent.nodes_visited"]["count"] > 0
        text = render_text(suite_result)
        assert "observability probe" in text
        assert "tracer disabled (null sink)" in text
        assert "buffer.hit_ratio" in text
