"""End-to-end tests of the benchmark runner (tiny scale)."""

import pytest

from repro.errors import ReproError
from repro.perf.registry import REGISTRY, Scale
from repro.perf.results import BenchResult
from repro.perf.runner import (
    derive_metrics,
    health_regressions,
    render_text,
    run_suite,
)

#: Small enough to run in well under a second, large enough to split.
TINY = Scale(
    name="smoke",
    n_points=300,
    n_queries=10,
    n_range_queries=5,
    n_knn_queries=3,
    repeats=1,
    warmup=0,
)


@pytest.fixture(scope="module")
def suite_result():
    return run_suite(TINY, suite="test")


class TestRunSuite:
    def test_runs_every_registered_case(self, suite_result):
        assert [r.name for r in suite_result.results] == list(REGISTRY)

    def test_scale_recorded(self, suite_result):
        assert suite_result.scale["n_points"] == 300
        assert suite_result.suite == "test"

    def test_acceptance_counters_present(self, suite_result):
        native = suite_result.result("range")
        rectpath = suite_result.result("range_rectpath")
        assert native.counters["pages_visited"] > 0
        assert native.counters == rectpath.counters

    def test_derived_metrics(self, suite_result):
        derived = suite_result.derived
        assert derived["bulk_load_speedup"] > 0
        assert derived["range_bitnative_speedup"] > 0
        assert derived["range_pages_equal"] is True
        assert derived["range_records_equal"] is True

    def test_only_selects_cases(self):
        result = run_suite(TINY, only=["bulk_load", "exact_match"])
        assert [r.name for r in result.results] == ["bulk_load", "exact_match"]
        assert "bulk_load_speedup" not in result.derived

    def test_unknown_case_rejected(self):
        with pytest.raises(ReproError):
            run_suite(TINY, only=["nope"])

    def test_progress_callback(self):
        seen = []
        run_suite(TINY, only=["exact_match"], progress=seen.append)
        assert seen == [
            "exact_match",
            "observability probe",
            "health probe (guarantee doctor)",
            "durability probe (WAL overhead + crash recovery)",
            "columnar probe (layout lanes + oracle)",
            "profiler probe (cost-profiler overhead)",
            "serving probe (concurrent mixes)",
        ]

    def test_progress_without_observability(self):
        seen = []
        run_suite(
            TINY,
            only=["exact_match"],
            progress=seen.append,
            observability=False,
        )
        assert seen == ["exact_match"]


class TestDeriveMetrics:
    def _result(self, name, best, counters=None):
        return BenchResult(
            name=name,
            description=name,
            ops=1,
            repeats=1,
            warmup=0,
            samples=[best],
            counters=counters or {},
        )

    def test_speedups(self):
        derived = derive_metrics([
            self._result("insert", 0.9),
            self._result("bulk_load", 0.3),
            self._result("range", 0.5, {"pages_visited": 7, "records_found": 3}),
            self._result(
                "range_rectpath", 1.0, {"pages_visited": 7, "records_found": 3}
            ),
        ])
        assert derived["bulk_load_speedup"] == pytest.approx(3.0)
        assert derived["range_bitnative_speedup"] == pytest.approx(2.0)
        assert derived["range_pages_equal"] is True

    def test_unequal_pages_flagged(self):
        derived = derive_metrics([
            self._result("range", 0.5, {"pages_visited": 7}),
            self._result("range_rectpath", 1.0, {"pages_visited": 8}),
        ])
        assert derived["range_pages_equal"] is False

    def test_partial_suites_skip_metrics(self):
        assert derive_metrics([self._result("insert", 1.0)]) == {}


class TestRenderText:
    def test_report_mentions_cases_and_derived(self, suite_result):
        text = render_text(suite_result)
        for result in suite_result.results:
            assert result.name in text
        assert "bulk_load_speedup" in text
        assert "range_pages_equal" in text

    def test_baseline_comparison_section(self, suite_result):
        text = render_text(suite_result, baseline=suite_result)
        assert "vs baseline" in text
        assert "1.00x" in text

    def test_observability_block(self, suite_result):
        obs = suite_result.observability
        assert obs["overhead"]["disabled_us_per_op"] > 0
        assert obs["overhead"]["ring_us_per_op"] > 0
        assert obs["metrics"]["descent.nodes_visited"]["count"] > 0
        text = render_text(suite_result)
        assert "observability probe" in text
        assert "tracer disabled (null sink)" in text
        assert "buffer.hit_ratio" in text


def _with_health(result, **overrides):
    """A shallow copy of a SuiteResult with its health block overridden."""
    import copy

    clone = copy.copy(result)
    clone.health = copy.deepcopy(result.health)
    clone.health.update(overrides)
    return clone


class TestHealthBlock:
    def test_suite_result_carries_health(self, suite_result):
        health = suite_result.health
        assert health["ok"] is True
        assert health["audit_clean"] is True
        assert health["verdicts"] == {
            "occupancy": "ok",
            "height": "ok",
            "no_cascade": "ok",
        }
        assert health["ops_applied"] >= health["n_points"]
        assert health["overhead"]["monitor_overhead_ratio"] > 0
        assert health["timeseries"]["ops"]

    def test_render_includes_doctor_block(self, suite_result):
        text = render_text(suite_result)
        assert "guarantee doctor" in text
        assert "guarantee: occupancy" in text
        assert "audit (incremental vs sweep)" in text

    def test_no_regression_against_self(self, suite_result):
        assert health_regressions(suite_result, suite_result) == []
        text = render_text(suite_result, baseline=suite_result)
        assert "no regressions" in text

    def test_verdict_downgrade_is_a_regression(self, suite_result):
        worse = _with_health(
            suite_result,
            verdicts={"occupancy": "violation", "height": "ok", "no_cascade": "ok"},
        )
        lines = health_regressions(suite_result, worse)
        assert lines == ["occupancy: ok -> violation"]
        text = render_text(worse, baseline=suite_result)
        assert "guarantee REGRESSIONS" in text

    def test_audit_drift_is_a_regression(self, suite_result):
        drifted = _with_health(suite_result, audit_clean=False)
        assert any(
            "drift" in line
            for line in health_regressions(suite_result, drifted)
        )

    def test_overhead_budget_breach_is_a_regression(self, suite_result):
        # Pin the baseline's measured ratio too: the regression line only
        # fires when the baseline was within budget, and the fixture's
        # real measurement can breach 1.03 on a loaded CI host.
        base = _with_health(
            suite_result,
            overhead={"monitor_overhead_ratio": 1.0},
        )
        heavy = _with_health(
            suite_result,
            overhead={"monitor_overhead_ratio": 1.5},
        )
        assert any(
            "overhead" in line
            for line in health_regressions(base, heavy)
        )

    def test_missing_health_blocks_compare_clean(self, suite_result):
        legacy = _with_health(suite_result)
        legacy.health = {}
        assert health_regressions(legacy, suite_result) == []
        assert health_regressions(suite_result, legacy) == []
