"""JSON round-trip and snapshot comparison for benchmark results."""

import json

import pytest

from repro.errors import ReproError
from repro.perf.results import (
    BenchResult,
    SuiteResult,
    compare,
    default_path,
)


def make_result(name="insert", samples=(0.2, 0.1)):
    return BenchResult(
        name=name,
        description=f"{name} case",
        ops=100,
        repeats=len(samples),
        warmup=1,
        samples=list(samples),
        counters={"pages_visited": 42},
    )


def make_suite(**kwargs):
    defaults = dict(
        suite="core",
        created="2026-01-01T00:00:00+00:00",
        scale={"name": "smoke", "n_points": 100},
        results=[make_result()],
        derived={"bulk_load_speedup": 3.5, "range_pages_equal": True},
    )
    defaults.update(kwargs)
    return SuiteResult(**defaults)


class TestBenchResult:
    def test_best_and_per_op(self):
        r = make_result(samples=(0.2, 0.1))
        assert r.best == 0.1
        assert r.per_op_us == pytest.approx(1000.0)

    def test_round_trip(self):
        r = make_result()
        again = BenchResult.from_dict(r.to_dict())
        assert again == r


class TestSuiteResult:
    def test_write_and_load(self, tmp_path):
        suite = make_suite()
        path = suite.write(tmp_path / "BENCH_core.json")
        loaded = SuiteResult.load(path)
        assert loaded == suite

    def test_observability_round_trips(self, tmp_path):
        obs = {"overhead": {"disabled_us_per_op": 15.5}, "probe_points": 300}
        suite = make_suite(observability=obs)
        loaded = SuiteResult.load(suite.write(tmp_path / "b.json"))
        assert loaded.observability == obs

    def test_pre_probe_snapshots_still_load(self):
        # The observability field is additive: a snapshot written before
        # the probe existed (no key at all) loads with an empty dict.
        data = make_suite().to_dict()
        del data["observability"]
        assert SuiteResult.from_dict(data).observability == {}

    def test_json_is_stable_schema(self, tmp_path):
        path = make_suite().write(tmp_path / "b.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1
        assert {"suite", "created", "scale", "results", "derived"} <= set(data)
        assert {"name", "samples", "best", "per_op_us", "counters"} <= set(
            data["results"][0]
        )

    def test_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "bad.json"
        data = make_suite().to_dict()
        data["schema_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ReproError):
            SuiteResult.load(path)

    def test_rejects_unreadable_file(self, tmp_path):
        with pytest.raises(ReproError):
            SuiteResult.load(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ReproError):
            SuiteResult.load(garbled)

    def test_result_lookup(self):
        suite = make_suite()
        assert suite.result("insert").name == "insert"
        with pytest.raises(ReproError):
            suite.result("nope")

    def test_default_path(self, tmp_path):
        assert default_path("core", root=tmp_path) == tmp_path / "BENCH_core.json"
        # Without a root the file lands at the repository root.
        assert default_path("core").name == "BENCH_core.json"
        assert (default_path("core").parent / "pyproject.toml").exists()


class TestCompare:
    def test_speedup_is_baseline_over_current(self):
        baseline = make_suite(results=[make_result(samples=(0.4,))])
        current = make_suite(results=[make_result(samples=(0.2,))])
        rows = compare(baseline, current)
        assert rows == [
            {
                "name": "insert",
                "baseline_best": 0.4,
                "current_best": 0.2,
                "speedup": 2.0,
            }
        ]

    def test_one_sided_cases(self):
        baseline = make_suite(results=[make_result(name="old_case")])
        current = make_suite(results=[make_result(name="new_case")])
        rows = {row["name"]: row for row in compare(baseline, current)}
        assert rows["new_case"]["baseline_best"] is None
        assert rows["new_case"]["speedup"] is None
        assert rows["old_case"]["current_best"] is None
